// Error model for DataBlinder.
//
// The library follows the C++ Core Guidelines error-handling philosophy:
// programming errors are asserted, operational failures are reported by
// typed exceptions rooted at `datablinder::Error`. Each subsystem throws a
// category-tagged error so callers (and the middleware core) can translate
// failures into protocol-level responses.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace datablinder {

/// Failure categories roughly matching the middleware subsystems.
enum class ErrorCode {
  kInvalidArgument,   // malformed input to a public API
  kNotFound,          // missing key, document, collection, tactic, ...
  kAlreadyExists,     // duplicate id / schema / registration
  kCryptoFailure,     // authentication tag mismatch, malformed ciphertext
  kSchemaViolation,   // document does not match its configured schema
  kPolicyViolation,   // annotations cannot be satisfied by any tactic
  kProtocolError,     // malformed or unexpected RPC message
  kUnavailable,       // channel closed / endpoint down / injected fault
  kInternal,          // invariant broken; indicates a library bug
};

/// Human-readable name for an ErrorCode (used in logs and messages).
std::string_view error_code_name(ErrorCode code) noexcept;

/// Root of the DataBlinder exception hierarchy.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

[[noreturn]] void throw_error(ErrorCode code, const std::string& message);

/// Throws kInvalidArgument unless `cond` holds.
void require(bool cond, const std::string& message);

/// Value-typed operational outcome for the paths where an exception is the
/// wrong tool: durability points, shutdown/cleanup, and bulk operations
/// that must report "how far did we get" alongside "did it work".
///
/// `[[nodiscard]]` is the contract, not a hint: a call site that drops a
/// Status compiles only as `(void)foo()` — and dblint's unchecked-status
/// pass flags even that unless the discard carries a reason. The
/// `-DDATABLINDER_WERROR=ON` CI build turns the compiler half of this into
/// a hard error tree-wide.
class [[nodiscard]] Status {
 public:
  /// Success.
  Status() = default;

  static Status OK() { return Status(); }

  static Status Failure(ErrorCode code, std::string message) {
    Status s;
    s.failed_ = true;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  /// Captures a caught Error without re-throwing (exception -> value edge).
  static Status Capture(const Error& e) { return Failure(e.code(), e.what()); }

  bool ok() const noexcept { return !failed_; }
  explicit operator bool() const noexcept { return ok(); }

  /// Only meaningful when !ok(); an OK status reports kInternal/"".
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// Value -> exception edge: no-op on OK, throws Error(code, message)
  /// otherwise. The sanctioned way to re-enter exception-based callers.
  void throw_if_error() const {
    if (failed_) throw_error(code_, message_);
  }

  std::string to_string() const {
    return failed_ ? std::string(error_code_name(code_)) + ": " + message_
                   : std::string("ok");
  }

 private:
  bool failed_ = false;
  ErrorCode code_ = ErrorCode::kInternal;
  std::string message_;
};

/// A value or a failure, never both. Same discard discipline as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design

  static Result Failure(ErrorCode code, std::string message) {
    return Result(Status::Failure(code, std::move(message)));
  }

  /// Adopts a failed Status (asserted: adopting an OK status is a bug).
  explicit Result(Status failure) : status_(std::move(failure)) {
    if (status_.ok()) {
      throw_error(ErrorCode::kInternal, "Result: adopted an OK status without a value");
    }
  }

  bool ok() const noexcept { return status_.ok(); }
  explicit operator bool() const noexcept { return ok(); }

  const Status& status() const noexcept { return status_; }

  /// Throws the carried failure when !ok().
  const T& value() const& {
    status_.throw_if_error();
    return *value_;
  }
  T& value() & {
    status_.throw_if_error();
    return *value_;
  }
  T&& value() && {
    status_.throw_if_error();
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;            // OK iff value_ holds
  std::optional<T> value_;
};

}  // namespace datablinder
