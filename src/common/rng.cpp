#include "common/rng.hpp"

#include <cstdio>

#include "common/status.hpp"

namespace datablinder {

void SecureRng::fill(std::span<std::uint8_t> out) {
  // A static FILE handle would need locking; opening per call keeps this
  // simple and is far from any hot path (key generation only).
  static thread_local std::FILE* urandom = std::fopen("/dev/urandom", "rb");
  if (urandom == nullptr) {
    throw_error(ErrorCode::kUnavailable, "cannot open /dev/urandom");
  }
  if (std::fread(out.data(), 1, out.size(), urandom) != out.size()) {
    throw_error(ErrorCode::kUnavailable, "short read from /dev/urandom");
  }
}

Bytes SecureRng::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

std::uint64_t SecureRng::uniform(std::uint64_t bound) {
  require(bound > 0, "SecureRng::uniform: bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  for (;;) {
    std::uint64_t v = 0;
    fill({reinterpret_cast<std::uint8_t*>(&v), sizeof(v)});
    if (v < limit) return v % bound;
  }
}

std::uint64_t DetRng::seed_or_entropy(std::uint64_t seed) {
  return seed != 0 ? seed : std::random_device{}();
}

std::uint64_t DetRng::uniform(std::uint64_t bound) {
  require(bound > 0, "DetRng::uniform: bound must be positive");
  return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
}

std::int64_t DetRng::range(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "DetRng::range: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double DetRng::real() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

void DetRng::fill(std::span<std::uint8_t> out) {
  for (auto& b : out) b = static_cast<std::uint8_t>(engine_());
}

Bytes DetRng::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

}  // namespace datablinder
