#include "common/secret.hpp"

#include <atomic>

namespace datablinder {

namespace secret_detail {

namespace {
std::atomic<WipeHook> g_wipe_hook{nullptr};
}  // namespace

void set_wipe_hook(WipeHook hook) noexcept { g_wipe_hook.store(hook); }

void wipe_region(std::uint8_t* p, std::size_t n) noexcept {
  secure_wipe({p, n});
  if (WipeHook hook = g_wipe_hook.load()) hook(p, n);
}

}  // namespace secret_detail

SecretBytes::SecretBytes(Bytes plaintext)
    : data_(plaintext.begin(), plaintext.end()) {
  secure_wipe(plaintext);  // the source (often a temporary) leaves no residue
}

SecretBytes SecretBytes::from_view(BytesView b) {
  SecretBytes s;
  s.data_.assign(b.begin(), b.end());
  return s;
}

SecretBytes SecretBytes::clone() const { return from_view(expose_secret()); }

bool ct_equal(const SecretBytes& a, const SecretBytes& b) noexcept {
  return ct_equal(a.expose_secret(), b.expose_secret());
}

std::ostream& operator<<(std::ostream& os, const SecretBytes& s) {
  return os << "[REDACTED:" << s.size() << "]";
}

}  // namespace datablinder
