// HKDF-SHA256 (RFC 5869) — extract-and-expand key derivation.
//
// The KMS derives every tactic-scoped key from the master key via HKDF
// with a per-tactic info string, mirroring the paper's "key management
// integration" tactic commonality.
#pragma once

#include "common/bytes.hpp"

namespace datablinder::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Bytes hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: derives `length` bytes from PRK and context `info`.
/// Requires length <= 255 * 32.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length);

/// Combined extract+expand.
Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length);

}  // namespace datablinder::crypto
