#include "crypto/siv.hpp"

#include <cstring>

#include "common/status.hpp"
#include "crypto/ctr.hpp"
#include "crypto/hmac.hpp"

namespace datablinder::crypto {

AesSiv::AesSiv(BytesView key) {
  require(key.size() == 32, "AesSiv: key must be 32 bytes");
  mac_key_ = SecretBytes::from_view(key.first(16));
  enc_key_ = SecretBytes::from_view(key.subspan(16));
}

AesSiv::AesSiv(const SecretBytes& key) : AesSiv(key.expose_secret()) {}

Bytes AesSiv::compute_siv(BytesView plaintext, BytesView aad) const {
  // S2V simplified: HMAC over len(aad) || aad || plaintext, truncated to 16B.
  HmacSha256 h(mac_key_);
  h.update(be64(aad.size()));
  h.update(aad);
  h.update(plaintext);
  Bytes tag = h.finalize();
  tag.resize(kIvSize);
  return tag;
}

Bytes AesSiv::seal(BytesView plaintext, BytesView aad) const {
  const Bytes siv = compute_siv(plaintext, aad);

  std::array<std::uint8_t, Aes::kBlockSize> counter{};
  std::memcpy(counter.data(), siv.data(), kIvSize);
  // Clear the top bits of the last two 32-bit words as RFC 5297 does, so the
  // CTR increments never overflow into the authenticated part.
  counter[8] &= 0x7f;
  counter[12] &= 0x7f;

  const Aes aes(enc_key_);
  Bytes out = siv;
  append(out, aes_ctr(aes, counter, plaintext));
  return out;
}

std::optional<Bytes> AesSiv::open(BytesView sealed, BytesView aad) const {
  if (sealed.size() < kIvSize) return std::nullopt;
  const BytesView siv = sealed.first(kIvSize);
  const BytesView ciphertext = sealed.subspan(kIvSize);

  std::array<std::uint8_t, Aes::kBlockSize> counter{};
  std::memcpy(counter.data(), siv.data(), kIvSize);
  counter[8] &= 0x7f;
  counter[12] &= 0x7f;

  const Aes aes(enc_key_);
  Bytes plaintext = aes_ctr(aes, counter, ciphertext);

  if (!ct_equal(compute_siv(plaintext, aad), siv)) return std::nullopt;
  return plaintext;
}

}  // namespace datablinder::crypto
