#include "crypto/hmac.hpp"

namespace datablinder::crypto {

HmacSha256::HmacSha256(BytesView key) {
  Bytes k(key.begin(), key.end());
  if (k.size() > Sha256::kBlockSize) {
    Bytes digest = Sha256::digest(k);
    secure_wipe(k);
    k = std::move(digest);
  }
  k.resize(Sha256::kBlockSize, 0);

  inner_pad_.resize(Sha256::kBlockSize);
  outer_pad_.resize(Sha256::kBlockSize);
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    inner_pad_[i] = k[i] ^ 0x36;
    outer_pad_[i] = k[i] ^ 0x5c;
  }
  secure_wipe(k);  // transient key copy leaves no residue
  reset();
}

HmacSha256::HmacSha256(const SecretBytes& key) : HmacSha256(key.expose_secret()) {}

void HmacSha256::reset() {
  inner_.reset();
  inner_.update(inner_pad_);
}

void HmacSha256::update(BytesView data) { inner_.update(data); }

Bytes HmacSha256::finalize() {
  const Bytes inner_digest = inner_.finalize();
  Sha256 outer;
  outer.update(outer_pad_);
  outer.update(inner_digest);
  return outer.finalize();
}

Bytes HmacSha256::mac(BytesView key, BytesView data) {
  HmacSha256 h(key);
  h.update(data);
  return h.finalize();
}

bool HmacSha256::verify(BytesView key, BytesView data, BytesView tag) {
  return ct_equal(mac(key, data), tag);
}

}  // namespace datablinder::crypto
