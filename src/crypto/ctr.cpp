#include "crypto/ctr.hpp"

namespace datablinder::crypto {

namespace {
void increment_counter(std::array<std::uint8_t, Aes::kBlockSize>& counter) {
  for (int i = Aes::kBlockSize - 1; i >= 0; --i) {
    if (++counter[static_cast<std::size_t>(i)] != 0) break;
  }
}
}  // namespace

void aes_ctr_xcrypt(const Aes& aes, std::array<std::uint8_t, Aes::kBlockSize> counter,
                    std::span<std::uint8_t> data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    auto keystream = counter;
    aes.encrypt_block(keystream.data());
    const std::size_t take = std::min(data.size() - offset, Aes::kBlockSize);
    for (std::size_t i = 0; i < take; ++i) data[offset + i] ^= keystream[i];
    offset += take;
    increment_counter(counter);
  }
}

Bytes aes_ctr(const Aes& aes, const std::array<std::uint8_t, Aes::kBlockSize>& counter0,
              BytesView data) {
  Bytes out(data.begin(), data.end());
  aes_ctr_xcrypt(aes, counter0, out);
  return out;
}

}  // namespace datablinder::crypto
