// AES-128/192/256 block cipher (FIPS 197).
//
// Portable table-free S-box implementation; the modes built on top (CTR,
// GCM, SIV) only require the forward direction, but the inverse cipher is
// provided for completeness of the primitive library.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/secret.hpp"

namespace datablinder::crypto {

class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16, 24 or 32 bytes; throws Error(kInvalidArgument) otherwise.
  explicit Aes(BytesView key);
  explicit Aes(const SecretBytes& key);

  Aes(const Aes&) = default;
  Aes& operator=(const Aes&) = default;
  /// The expanded key schedule is secret-derived: wipe it on destruction.
  ~Aes() { secure_wipe(round_keys_); }

  /// Encrypts one 16-byte block in place.
  void encrypt_block(std::uint8_t block[kBlockSize]) const;

  /// Decrypts one 16-byte block in place.
  void decrypt_block(std::uint8_t block[kBlockSize]) const;

  /// Convenience: encrypt a single block by value.
  std::array<std::uint8_t, kBlockSize> encrypt(
      const std::array<std::uint8_t, kBlockSize>& in) const;

  std::size_t rounds() const noexcept { return rounds_; }

 private:
  void expand_key(BytesView key);

  // Round keys: (rounds_+1) * 16 bytes.
  std::array<std::uint8_t, 15 * kBlockSize> round_keys_{};
  std::size_t rounds_ = 0;
};

}  // namespace datablinder::crypto
