// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//
// The workhorse PRF of the library: SSE token derivation, DET synthetic
// IVs and KMS key derivation are all built on it.
#pragma once

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "crypto/sha256.hpp"

namespace datablinder::crypto {

class HmacSha256 {
 public:
  static constexpr std::size_t kTagSize = Sha256::kDigestSize;

  /// Keys of any length are accepted (hashed down if > block size).
  explicit HmacSha256(BytesView key);
  explicit HmacSha256(const SecretBytes& key);

  HmacSha256(const HmacSha256&) = default;
  HmacSha256& operator=(const HmacSha256&) = default;
  /// The pads are key-derived: wipe them on destruction.
  ~HmacSha256() {
    secure_wipe(inner_pad_);
    secure_wipe(outer_pad_);
  }

  void update(BytesView data);
  Bytes finalize();
  void reset();

  /// One-shot MAC.
  static Bytes mac(BytesView key, BytesView data);

  /// Constant-time verification of a full-length tag.
  static bool verify(BytesView key, BytesView data, BytesView tag);

 private:
  Bytes inner_pad_;
  Bytes outer_pad_;
  Sha256 inner_;
};

}  // namespace datablinder::crypto
