#include "crypto/prf.hpp"

#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"

namespace datablinder::crypto {

PrfKey::PrfKey(BytesView key) {
  Bytes k(key.begin(), key.end());
  if (k.size() > Sha256::kBlockSize) {
    Bytes digest = Sha256::digest(k);
    secure_wipe(k);
    k = std::move(digest);
  }
  k.resize(Sha256::kBlockSize, 0);

  Bytes pad(Sha256::kBlockSize);
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) pad[i] = k[i] ^ 0x36;
  inner_mid_.update(pad);
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) pad[i] = k[i] ^ 0x5c;
  outer_mid_.update(pad);
  secure_wipe(pad);
  secure_wipe(k);
}

PrfKey::PrfKey(const SecretBytes& key) : PrfKey(key.expose_secret()) {}

PrfKey::~PrfKey() {
  // reset() reloads the IV constants, clearing the key-derived midstates.
  inner_mid_.reset();
  outer_mid_.reset();
}

Bytes PrfKey::finish(Sha256 inner) const {
  const Bytes inner_digest = inner.finalize();
  Sha256 outer = outer_mid_;
  outer.update(inner_digest);
  return outer.finalize();
}

Bytes PrfKey::prf(BytesView input) const {
  Sha256 inner = inner_mid_;
  inner.update(input);
  return finish(std::move(inner));
}

Bytes PrfKey::prf_labeled(std::string_view label, BytesView input) const {
  Sha256 inner = inner_mid_;
  inner.update(to_bytes(label));
  const std::uint8_t sep = 0;
  inner.update({&sep, 1});
  inner.update(input);
  return finish(std::move(inner));
}

Bytes PrfKey::prf_n(BytesView input, std::size_t n) const {
  if (n <= HmacSha256::kTagSize) {
    Bytes out = prf(input);
    out.resize(n);
    return out;
  }
  return hkdf_expand(prf(input), to_bytes("prf_n"), n);
}

std::uint64_t PrfKey::prf_u64(BytesView input) const { return read_be64(prf(input)); }

std::uint64_t PrfKey::prf_mod(BytesView input, std::uint64_t bound) const {
  return prf_u64(input) % bound;
}

Bytes prf(BytesView key, BytesView input) { return HmacSha256::mac(key, input); }

Bytes prf_labeled(BytesView key, std::string_view label, BytesView input) {
  HmacSha256 h(key);
  h.update(to_bytes(label));
  const std::uint8_t sep = 0;
  h.update({&sep, 1});
  h.update(input);
  return h.finalize();
}

Bytes prf_n(BytesView key, BytesView input, std::size_t n) {
  if (n <= HmacSha256::kTagSize) {
    Bytes out = prf(key, input);
    out.resize(n);
    return out;
  }
  return hkdf_expand(prf(key, input), to_bytes("prf_n"), n);
}

std::uint64_t prf_u64(BytesView key, BytesView input) {
  return read_be64(prf(key, input));
}

std::uint64_t prf_mod(BytesView key, BytesView input, std::uint64_t bound) {
  // Bias is negligible for bound << 2^64 (all library uses are tiny bounds).
  return prf_u64(key, input) % bound;
}

// SecretBytes overloads: the one sanctioned unwrap point for PRF callers,
// so scheme code passes tainted keys without touching expose_secret().
Bytes prf(const SecretBytes& key, BytesView input) {
  return prf(key.expose_secret(), input);
}

Bytes prf_labeled(const SecretBytes& key, std::string_view label, BytesView input) {
  return prf_labeled(key.expose_secret(), label, input);
}

Bytes prf_n(const SecretBytes& key, BytesView input, std::size_t n) {
  return prf_n(key.expose_secret(), input, n);
}

std::uint64_t prf_u64(const SecretBytes& key, BytesView input) {
  return prf_u64(key.expose_secret(), input);
}

std::uint64_t prf_mod(const SecretBytes& key, BytesView input, std::uint64_t bound) {
  return prf_mod(key.expose_secret(), input, bound);
}

}  // namespace datablinder::crypto
