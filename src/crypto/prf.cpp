#include "crypto/prf.hpp"

#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"

namespace datablinder::crypto {

Bytes prf(BytesView key, BytesView input) { return HmacSha256::mac(key, input); }

Bytes prf_labeled(BytesView key, std::string_view label, BytesView input) {
  HmacSha256 h(key);
  h.update(to_bytes(label));
  const std::uint8_t sep = 0;
  h.update({&sep, 1});
  h.update(input);
  return h.finalize();
}

Bytes prf_n(BytesView key, BytesView input, std::size_t n) {
  if (n <= HmacSha256::kTagSize) {
    Bytes out = prf(key, input);
    out.resize(n);
    return out;
  }
  return hkdf_expand(prf(key, input), to_bytes("prf_n"), n);
}

std::uint64_t prf_u64(BytesView key, BytesView input) {
  return read_be64(prf(key, input));
}

std::uint64_t prf_mod(BytesView key, BytesView input, std::uint64_t bound) {
  // Bias is negligible for bound << 2^64 (all library uses are tiny bounds).
  return prf_u64(key, input) % bound;
}

// SecretBytes overloads: the one sanctioned unwrap point for PRF callers,
// so scheme code passes tainted keys without touching expose_secret().
Bytes prf(const SecretBytes& key, BytesView input) {
  return prf(key.expose_secret(), input);
}

Bytes prf_labeled(const SecretBytes& key, std::string_view label, BytesView input) {
  return prf_labeled(key.expose_secret(), label, input);
}

Bytes prf_n(const SecretBytes& key, BytesView input, std::size_t n) {
  return prf_n(key.expose_secret(), input, n);
}

std::uint64_t prf_u64(const SecretBytes& key, BytesView input) {
  return prf_u64(key.expose_secret(), input);
}

std::uint64_t prf_mod(const SecretBytes& key, BytesView input, std::uint64_t bound) {
  return prf_mod(key.expose_secret(), input, bound);
}

}  // namespace datablinder::crypto
