// Deterministic authenticated encryption (SIV construction, RFC 5297 style
// with HMAC-SHA256 as the S2V PRF).
//
// This is the DET tactic's cipher: equal plaintexts under the same key and
// associated data produce equal ciphertexts, enabling server-side equality
// matching at the cost of leaking equality (protection Class 4).
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/secret.hpp"

namespace datablinder::crypto {

class AesSiv {
 public:
  static constexpr std::size_t kIvSize = 16;

  /// Key must be 32 bytes; it is split into a MAC half and a CTR half.
  explicit AesSiv(BytesView key);
  explicit AesSiv(const SecretBytes& key);

  /// Deterministic encryption: output = SIV || ciphertext.
  Bytes seal(BytesView plaintext, BytesView aad = {}) const;

  /// Returns nullopt if the synthetic IV does not authenticate.
  std::optional<Bytes> open(BytesView sealed, BytesView aad = {}) const;

 private:
  Bytes compute_siv(BytesView plaintext, BytesView aad) const;

  SecretBytes mac_key_;
  SecretBytes enc_key_;
};

}  // namespace datablinder::crypto
