#include "crypto/hkdf.hpp"

#include "common/status.hpp"
#include "crypto/hmac.hpp"

namespace datablinder::crypto {

Bytes hkdf_extract(BytesView salt, BytesView ikm) {
  if (salt.empty()) {
    const Bytes zero(HmacSha256::kTagSize, 0);
    return HmacSha256::mac(zero, ikm);
  }
  return HmacSha256::mac(salt, ikm);
}

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length) {
  require(length <= 255 * HmacSha256::kTagSize, "hkdf_expand: length too large");
  Bytes out;
  out.reserve(length);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    HmacSha256 h(prk);
    h.update(t);
    h.update(info);
    h.update({&counter, 1});
    t = h.finalize();
    const std::size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
    ++counter;
  }
  secure_wipe(t);  // T(i) blocks are key material: no residue on the heap
  return out;
}

Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length) {
  Bytes prk = hkdf_extract(salt, ikm);
  Bytes out = hkdf_expand(prk, info, length);
  secure_wipe(prk);  // the PRK is a derived secret; wipe the scratch copy
  return out;
}

}  // namespace datablinder::crypto
