// AES-GCM authenticated encryption (NIST SP 800-38D).
//
// This is the RND tactic's cipher and the general-purpose AEAD for
// document payloads: probabilistic, tamper-evident, with optional
// associated data (used to bind ciphertexts to document ids).
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "crypto/aes.hpp"

namespace datablinder::crypto {

class AesGcm {
 public:
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kTagSize = 16;

  /// Key must be 16, 24 or 32 bytes.
  explicit AesGcm(BytesView key);
  explicit AesGcm(const SecretBytes& key);

  AesGcm(const AesGcm&) = default;
  AesGcm& operator=(const AesGcm&) = default;
  /// The GHASH subkey is AES_K(0): key-derived, wiped on destruction.
  ~AesGcm() {
    secure_wipe({reinterpret_cast<std::uint8_t*>(&h_hi_), sizeof(h_hi_)});
    secure_wipe({reinterpret_cast<std::uint8_t*>(&h_lo_), sizeof(h_lo_)});
  }

  /// Encrypts with a caller-provided 12-byte nonce. Output layout is
  /// ciphertext || tag. Nonces MUST be unique per key.
  Bytes seal(BytesView nonce, BytesView plaintext, BytesView aad = {}) const;

  /// Encrypts with a fresh random nonce; output is nonce || ciphertext || tag.
  Bytes seal_random_nonce(BytesView plaintext, BytesView aad = {}) const;

  /// Decrypts ciphertext || tag. Returns nullopt on authentication failure.
  std::optional<Bytes> open(BytesView nonce, BytesView sealed, BytesView aad = {}) const;

  /// Decrypts nonce || ciphertext || tag produced by seal_random_nonce.
  std::optional<Bytes> open_with_nonce(BytesView sealed, BytesView aad = {}) const;

 private:
  Bytes ghash(BytesView aad, BytesView ciphertext) const;

  Aes aes_;
  // GHASH subkey H = AES_K(0^128), stored as two 64-bit halves.
  std::uint64_t h_hi_ = 0;
  std::uint64_t h_lo_ = 0;
};

}  // namespace datablinder::crypto
