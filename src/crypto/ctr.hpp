// AES-CTR keystream mode (NIST SP 800-38A).
//
// Used directly by the SIV construction and as the confidentiality layer
// inside GCM (which is CTR with a GHASH tag).
#pragma once

#include "common/bytes.hpp"
#include "crypto/aes.hpp"

namespace datablinder::crypto {

/// Encrypts/decrypts `data` in place with AES-CTR. The 16-byte `counter0`
/// is the initial counter block; it is incremented big-endian per block.
void aes_ctr_xcrypt(const Aes& aes, std::array<std::uint8_t, Aes::kBlockSize> counter0,
                    std::span<std::uint8_t> data);

/// Convenience returning a new buffer.
Bytes aes_ctr(const Aes& aes, const std::array<std::uint8_t, Aes::kBlockSize>& counter0,
              BytesView data);

}  // namespace datablinder::crypto
