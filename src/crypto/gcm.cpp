#include "crypto/gcm.hpp"

#include <cstring>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "crypto/ctr.hpp"

namespace datablinder::crypto {

namespace {

struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

U128 load128(const std::uint8_t* p) {
  U128 v;
  for (int i = 0; i < 8; ++i) v.hi = (v.hi << 8) | p[i];
  for (int i = 8; i < 16; ++i) v.lo = (v.lo << 8) | p[i];
  return v;
}

void store128(const U128& v, std::uint8_t* p) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v.hi >> (8 * (7 - i)));
  for (int i = 0; i < 8; ++i) p[8 + i] = static_cast<std::uint8_t>(v.lo >> (8 * (7 - i)));
}

// GF(2^128) multiplication per SP 800-38D, bitwise (right-shift) variant.
U128 gf_mul(const U128& x, const U128& y) {
  U128 z;             // accumulator
  U128 v = y;
  for (int i = 0; i < 128; ++i) {
    const std::uint64_t bit =
        (i < 64) ? (x.hi >> (63 - i)) & 1 : (x.lo >> (127 - i)) & 1;
    if (bit) {
      z.hi ^= v.hi;
      z.lo ^= v.lo;
    }
    const bool lsb = v.lo & 1;
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi >>= 1;
    if (lsb) v.hi ^= 0xe100000000000000ULL;  // reduction polynomial R
  }
  return z;
}

}  // namespace

AesGcm::AesGcm(BytesView key) : aes_(key) {
  std::uint8_t h[Aes::kBlockSize] = {0};
  aes_.encrypt_block(h);
  const U128 hv = load128(h);
  h_hi_ = hv.hi;
  h_lo_ = hv.lo;
  secure_wipe(h);
}

AesGcm::AesGcm(const SecretBytes& key) : AesGcm(key.expose_secret()) {}

Bytes AesGcm::ghash(BytesView aad, BytesView ciphertext) const {
  const U128 h{h_hi_, h_lo_};
  U128 y;
  auto absorb = [&](BytesView data) {
    std::size_t offset = 0;
    while (offset < data.size()) {
      std::uint8_t block[16] = {0};
      const std::size_t take = std::min<std::size_t>(16, data.size() - offset);
      std::memcpy(block, data.data() + offset, take);
      const U128 b = load128(block);
      y.hi ^= b.hi;
      y.lo ^= b.lo;
      y = gf_mul(y, h);
      offset += take;
    }
  };
  absorb(aad);
  absorb(ciphertext);
  // Length block: 64-bit bit-lengths of AAD and ciphertext.
  std::uint8_t len_block[16];
  const U128 lens{static_cast<std::uint64_t>(aad.size()) * 8,
                  static_cast<std::uint64_t>(ciphertext.size()) * 8};
  store128(lens, len_block);
  const U128 lb = load128(len_block);
  y.hi ^= lb.hi;
  y.lo ^= lb.lo;
  y = gf_mul(y, h);

  Bytes out(16);
  store128(y, out.data());
  return out;
}

Bytes AesGcm::seal(BytesView nonce, BytesView plaintext, BytesView aad) const {
  require(nonce.size() == kNonceSize, "AesGcm: nonce must be 12 bytes");

  // J0 = nonce || 0^31 || 1 for 96-bit nonces.
  std::array<std::uint8_t, 16> j0{};
  std::memcpy(j0.data(), nonce.data(), kNonceSize);
  j0[15] = 1;

  auto counter = j0;
  counter[15] = 2;  // CTR starts at inc32(J0)
  Bytes ciphertext = aes_ctr(aes_, counter, plaintext);

  Bytes s = ghash(aad, ciphertext);
  std::uint8_t ek_j0[16];
  std::memcpy(ek_j0, j0.data(), 16);
  aes_.encrypt_block(ek_j0);
  for (std::size_t i = 0; i < kTagSize; ++i) s[i] ^= ek_j0[i];

  append(ciphertext, s);
  return ciphertext;
}

Bytes AesGcm::seal_random_nonce(BytesView plaintext, BytesView aad) const {
  Bytes nonce = SecureRng::bytes(kNonceSize);
  Bytes sealed = seal(nonce, plaintext, aad);
  Bytes out;
  out.reserve(nonce.size() + sealed.size());
  append(out, nonce);
  append(out, sealed);
  return out;
}

std::optional<Bytes> AesGcm::open(BytesView nonce, BytesView sealed, BytesView aad) const {
  if (nonce.size() != kNonceSize || sealed.size() < kTagSize) return std::nullopt;
  const BytesView ciphertext = sealed.first(sealed.size() - kTagSize);
  const BytesView tag = sealed.last(kTagSize);

  std::array<std::uint8_t, 16> j0{};
  std::memcpy(j0.data(), nonce.data(), kNonceSize);
  j0[15] = 1;

  Bytes s = ghash(aad, ciphertext);
  std::uint8_t ek_j0[16];
  std::memcpy(ek_j0, j0.data(), 16);
  aes_.encrypt_block(ek_j0);
  for (std::size_t i = 0; i < kTagSize; ++i) s[i] ^= ek_j0[i];

  if (!ct_equal(s, tag)) return std::nullopt;

  auto counter = j0;
  counter[15] = 2;
  return aes_ctr(aes_, counter, ciphertext);
}

std::optional<Bytes> AesGcm::open_with_nonce(BytesView sealed, BytesView aad) const {
  if (sealed.size() < kNonceSize + kTagSize) return std::nullopt;
  return open(sealed.first(kNonceSize), sealed.subspan(kNonceSize), aad);
}

}  // namespace datablinder::crypto
