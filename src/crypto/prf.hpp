// Keyed pseudorandom function helpers layered over HMAC-SHA256 and AES.
//
// SSE schemes and ORE are specified in terms of abstract PRFs/PRPs; these
// helpers give them concrete, fixed-width instantiations.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "crypto/sha256.hpp"

namespace datablinder::crypto {

/// A PRF key with the HMAC key schedule hoisted: the SHA-256 midstates for
/// the ipad/opad blocks are computed once at construction, so every MAC
/// afterwards skips the key hashing/padding and two compression rounds.
/// SSE schemes evaluate the PRF per keyword-counter pair under one long-
/// lived key, which makes the per-call schedule the dominant fixed cost.
///
/// Bit-for-bit compatible with the free `prf*` functions (pinned by the
/// differential tests); copyable so scheme clients can hold it by value.
class PrfKey {
 public:
  explicit PrfKey(BytesView key);
  explicit PrfKey(const SecretBytes& key);

  PrfKey(const PrfKey&) = default;
  PrfKey& operator=(const PrfKey&) = default;
  /// The midstates are key-derived: wipe them on destruction.
  ~PrfKey();

  Bytes prf(BytesView input) const;
  Bytes prf_labeled(std::string_view label, BytesView input) const;
  Bytes prf_n(BytesView input, std::size_t n) const;
  std::uint64_t prf_u64(BytesView input) const;
  std::uint64_t prf_mod(BytesView input, std::uint64_t bound) const;

 private:
  /// Finishes HMAC from the cached midstates over an already-absorbed
  /// inner state.
  Bytes finish(Sha256 inner) const;

  Sha256 inner_mid_;  // state after absorbing key ^ ipad
  Sha256 outer_mid_;  // state after absorbing key ^ opad
};

/// PRF(key, input) -> 32 bytes (HMAC-SHA256).
Bytes prf(BytesView key, BytesView input);
Bytes prf(const SecretBytes& key, BytesView input);

/// PRF with a domain-separation label, convenient for protocol design:
/// PRF(key, label || 0x00 || input).
Bytes prf_labeled(BytesView key, std::string_view label, BytesView input);
Bytes prf_labeled(const SecretBytes& key, std::string_view label, BytesView input);

/// PRF truncated/expanded to exactly `n` bytes (HKDF-expand when n > 32).
Bytes prf_n(BytesView key, BytesView input, std::size_t n);
Bytes prf_n(const SecretBytes& key, BytesView input, std::size_t n);

/// PRF producing a uint64 (first 8 bytes big-endian).
std::uint64_t prf_u64(BytesView key, BytesView input);
std::uint64_t prf_u64(const SecretBytes& key, BytesView input);

/// Small-domain PRF used by ORE: maps input to a value in [0, bound).
std::uint64_t prf_mod(BytesView key, BytesView input, std::uint64_t bound);
std::uint64_t prf_mod(const SecretBytes& key, BytesView input, std::uint64_t bound);

}  // namespace datablinder::crypto
