// SHA-256 (FIPS 180-4).
//
// Incremental hashing interface plus a one-shot helper. Used as the base
// primitive for HMAC, HKDF and SSE keyword hashing throughout the library.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace datablinder::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  /// Absorbs more input.
  void update(BytesView data);

  /// Finalizes and returns the 32-byte digest. The object must be reset()
  /// before reuse.
  Bytes finalize();

  /// Re-initializes the state for a fresh computation.
  void reset();

  /// One-shot convenience.
  static Bytes digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_;
  std::uint64_t total_len_;
};

}  // namespace datablinder::crypto
