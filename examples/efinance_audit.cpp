// E-finance use case — the other industry the paper's consortium serves
// (UnifiedPost: invoicing/financial documents).
//
// An invoice ledger is outsourced to an untrusted cloud. Compliance needs:
//   * auditors look up invoices by counterparty (equality, forward-private),
//   * finance filters by (status AND category) (boolean search),
//   * reporting sums and averages invoice amounts without ever exposing a
//     single amount to the cloud (Paillier),
//   * quarterly range queries over the booking date (OPE),
//   * the beneficiary IBAN is stored but never searched (RND, Class 1),
// plus an operational drill: key rotation via the Keys interface.
//
// Build & run:  ./build/examples/efinance_audit
#include <cstdio>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "common/rng.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

namespace {
schema::Schema invoice_schema() {
  schema::Schema s("invoices");
  using schema::Aggregate;
  using schema::FieldAnnotation;
  using schema::FieldType;
  using schema::Operation;
  using schema::ProtectionClass;

  FieldAnnotation counterparty;
  counterparty.type = FieldType::kString;
  counterparty.sensitive = true;
  counterparty.protection = ProtectionClass::kClass2;  // identifier-level
  counterparty.operations = {Operation::kInsert, Operation::kEquality};
  s.field("counterparty", counterparty);

  FieldAnnotation status;
  status.type = FieldType::kString;
  status.sensitive = true;
  status.protection = ProtectionClass::kClass3;
  status.operations = {Operation::kInsert, Operation::kEquality, Operation::kBoolean};
  s.field("status", status);

  FieldAnnotation category = status;
  s.field("category", category);

  FieldAnnotation amount;
  amount.type = FieldType::kDouble;
  amount.sensitive = true;
  amount.protection = ProtectionClass::kClass1;  // never searchable, only aggregated
  amount.operations = {Operation::kInsert};
  amount.aggregates = {Aggregate::kSum, Aggregate::kAverage, Aggregate::kCount};
  s.field("amount", amount);

  FieldAnnotation booked;
  booked.type = FieldType::kInt;
  booked.sensitive = true;
  booked.protection = ProtectionClass::kClass5;
  booked.operations = {Operation::kInsert, Operation::kRange};
  s.field("booked", booked);

  FieldAnnotation iban;
  iban.type = FieldType::kString;
  iban.sensitive = true;
  iban.protection = ProtectionClass::kClass1;
  iban.operations = {Operation::kInsert};
  s.field("iban", iban);

  s.plain_field("reference", FieldType::kString);
  return s;
}
}  // namespace

int main() {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore gateway_store;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gateway(rpc, kms, gateway_store, registry,
                        core::GatewayConfig{{{"paillier_modulus_bits", "512"}}});

  gateway.register_schema(invoice_schema());
  std::printf("== Invoice ledger tactic selection ==\n%s\n",
              gateway.plan("invoices").to_table().c_str());

  const char* counterparties[] = {"Acme NV", "Globex BV", "Initech GmbH", "Umbrella SA"};
  const char* statuses[] = {"paid", "open", "overdue"};
  const char* categories[] = {"services", "goods", "licensing"};

  DetRng rng(77);
  const std::int64_t q1_start = 1704067200;  // 2024-01-01
  double expected_total = 0;
  for (int i = 0; i < 300; ++i) {
    Document d;
    d.set("counterparty", Value(counterparties[rng.uniform(4)]));
    d.set("status", Value(statuses[rng.uniform(3)]));
    d.set("category", Value(categories[rng.uniform(3)]));
    const double amount = static_cast<double>(rng.range(1000, 999999)) / 100.0;
    expected_total += amount;
    d.set("amount", Value(amount));
    d.set("booked", Value(q1_start + rng.range(0, 364 * 24 * 3600)));
    d.set("iban", Value("BE" + std::to_string(10000000000000 + rng.range(0, 999999999))));
    d.set("reference", Value("INV-2024-" + std::to_string(1000 + i)));
    gateway.insert("invoices", d);
  }

  // Auditor: all invoices of one counterparty (Mitra — the cloud learns
  // only which encrypted index entries were touched).
  const auto acme = gateway.equality_search("invoices", "counterparty", Value("Acme NV"));
  std::printf("audit: Acme NV has %zu invoices\n", acme.size());

  // Finance: overdue service invoices (boolean across two fields).
  core::FieldBoolQuery q;
  q.dnf.push_back({{"status", Value("overdue")}, {"category", Value("services")}});
  std::printf("finance: %zu overdue service invoices\n",
              gateway.boolean_search("invoices", q).size());

  // Reporting: totals without the cloud ever seeing one amount.
  const auto total = gateway.aggregate("invoices", "amount", schema::Aggregate::kSum);
  const auto avg = gateway.aggregate("invoices", "amount", schema::Aggregate::kAverage);
  std::printf("reporting: total %.2f (expected %.2f), average %.2f over %llu invoices\n",
              total.value, expected_total, avg.value,
              static_cast<unsigned long long>(avg.count));

  // Quarterly range over the booking date (OPE index scan).
  const auto q1 = gateway.range_search("invoices", "booked", Value(q1_start),
                                       Value(q1_start + 90 * 24 * 3600 - 1));
  std::printf("quarterly: %zu invoices booked in Q1\n", q1.size());

  // Operational drill: rotate the per-field Mitra key epoch via the Keys
  // interface. New epochs yield fresh derived keys; re-encryption of the
  // existing index would be driven by an operator runbook (out of scope
  // here) — the drill shows the scoping works.
  const std::uint64_t epoch = gateway.keys().rotate("mitra/invoices/counterparty");
  std::printf("keys: rotated mitra/invoices/counterparty to epoch %llu\n",
              static_cast<unsigned long long>(epoch));

  std::printf("\ncloud holds %zu bytes of ciphertext for %d invoices; "
              "%llu round trips total\n",
              cloud.storage_bytes(), 300,
              static_cast<unsigned long long>(channel.stats().round_trips.load()));
  return 0;
}
