// Quickstart: protect one collection with DataBlinder in ~60 lines.
//
//   1. Stand up an (in-process) untrusted cloud node and a trusted gateway.
//   2. Annotate a schema: which fields are sensitive, how protected, and
//      which queries you need.
//   3. Insert documents and query them — the middleware picks and drives
//      the cryptographic tactics; your code never touches a cipher.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

int main() {
  // --- infrastructure: untrusted cloud + simulated channel + trusted side --
  core::CloudNode cloud;
  net::Channel channel;                       // add latency/faults here if desired
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;                        // stands in for the on-prem HSM
  store::KvStore gateway_store;               // gateway-local Redis role

  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);   // DET, RND, Mitra, Sophos, BIEX, OPE, ORE, Paillier

  core::Gateway gateway(rpc, kms, gateway_store, registry,
                        core::GatewayConfig{{{"paillier_modulus_bits", "512"}}});

  // --- schema: the data access model (protection class + operations) -------
  schema::Schema patients("patients");
  {
    schema::FieldAnnotation name;             // who: identifier-level protection
    name.type = schema::FieldType::kString;
    name.sensitive = true;
    name.protection = schema::ProtectionClass::kClass2;
    name.operations = {schema::Operation::kInsert, schema::Operation::kEquality};
    patients.field("name", name);

    schema::FieldAnnotation heart_rate;       // vital: range + average
    heart_rate.type = schema::FieldType::kInt;
    heart_rate.sensitive = true;
    heart_rate.protection = schema::ProtectionClass::kClass5;
    heart_rate.operations = {schema::Operation::kInsert, schema::Operation::kRange};
    heart_rate.aggregates = {schema::Aggregate::kAverage, schema::Aggregate::kMax};
    patients.field("heart_rate", heart_rate);

    patients.plain_field("note", schema::FieldType::kString);
  }
  gateway.register_schema(patients);
  std::printf("Tactic selection:\n%s\n", gateway.plan("patients").to_table().c_str());

  // --- use it like a plain document store ----------------------------------
  for (const auto& [who, bpm] : std::initializer_list<std::pair<const char*, int>>{
           {"alice", 72}, {"bob", 95}, {"carol", 58}, {"alice", 80}}) {
    Document d;
    d.set("name", Value(who));
    d.set("heart_rate", Value(std::int64_t{bpm}));
    d.set("note", Value("routine checkup"));
    gateway.insert("patients", d);
  }

  const auto alice = gateway.equality_search("patients", "name", Value("alice"));
  std::printf("alice has %zu observations\n", alice.size());

  const auto elevated = gateway.range_search("patients", "heart_rate",
                                             Value(std::int64_t{90}),
                                             Value(std::int64_t{200}));
  std::printf("%zu observations with heart rate >= 90\n", elevated.size());

  const auto avg = gateway.aggregate("patients", "heart_rate",
                                     schema::Aggregate::kAverage);
  std::printf("average heart rate (computed homomorphically cloud-side): %.1f over %llu\n",
              avg.value, static_cast<unsigned long long>(avg.count));
  const auto mx = gateway.aggregate("patients", "heart_rate", schema::Aggregate::kMax);
  std::printf("max heart rate: %.0f\n", mx.value);

  std::printf("\nbytes to cloud: %llu, round trips: %llu — all ciphertext.\n",
              static_cast<unsigned long long>(channel.stats().bytes_sent.load()),
              static_cast<unsigned long long>(channel.stats().round_trips.load()));
  return 0;
}
