// Crypto agility — the paper's headline property: "the ability to plug and
// play cryptographic schemes depending on their evolution in time."
//
// The SAME application code (schema + queries below) runs against three
// registry configurations:
//   baseline     — the default tactic set (BIEX-2Lev, Mitra, OPE),
//   space-opt    — BIEX-ZMF promoted over BIEX-2Lev (smaller index, reads
//                  re-verified at the gateway),
//   ore-resting  — ORE promoted over OPE (stored ciphertexts mutually
//                  incomparable; only query tokens reveal order).
// Queries return identical answers in every configuration; what changes is
// the cloud-side footprint and the leakage profile — printed side by side.
//
// Build & run:  ./build/examples/crypto_agility
#include <cstdio>
#include <functional>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/biexzmf_tactic.hpp"
#include "core/tactics/builtin.hpp"
#include "core/tactics/ore_tactic.hpp"
#include "fhir/observation.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

namespace {

core::TacticRegistry make_registry(const std::string& flavour) {
  core::TacticRegistry r;
  core::register_det_tactic(r);
  core::register_rnd_tactic(r);
  core::register_mitra_tactic(r);
  core::register_sophos_tactic(r);
  if (flavour == "space-opt") {
    core::TacticDescriptor d = core::BiexZmfTactic::static_descriptor();
    d.preference = 100;  // promote the matryoshka-filter variant
    r.register_boolean_tactic(std::move(d), [](const core::GatewayContext& ctx) {
      return std::make_unique<core::BiexZmfTactic>(ctx);
    });
  } else {
    core::register_biexzmf_tactic(r);
  }
  core::register_biex2lev_tactic(r);
  if (flavour == "ore-resting") {
    core::TacticDescriptor d = core::OreTactic::static_descriptor();
    d.preference = 100;  // promote ORE over OPE
    r.register_field_tactic(std::move(d), [](const core::GatewayContext& ctx) {
      return std::make_unique<core::OreTactic>(ctx);
    });
  } else {
    core::register_ore_tactic(r);
  }
  core::register_ope_tactic(r);
  core::register_paillier_tactic(r);
  return r;
}

struct RunStats {
  std::string boolean_tactic, range_tactic;
  std::size_t bool_hits = 0, range_hits = 0;
  double avg = 0;
  std::size_t cloud_bytes = 0;
  std::uint64_t wire_bytes = 0;
};

// The application: entirely tactic-agnostic.
RunStats run_application(const core::TacticRegistry& registry) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms(Bytes(32, 9));  // fixed master so runs are comparable
  store::KvStore gateway_store;
  core::Gateway gateway(rpc, kms, gateway_store, registry,
                        core::GatewayConfig{{{"paillier_modulus_bits", "512"}}});
  gateway.register_schema(fhir::observation_schema("obs"));

  fhir::ObservationGenerator gen(4242);
  for (int i = 0; i < 150; ++i) gateway.insert("obs", gen.next());

  RunStats s;
  s.boolean_tactic = gateway.plan("obs").boolean_tactic;
  s.range_tactic = gateway.plan("obs").fields.at("effective").range_tactic;

  core::FieldBoolQuery q;
  q.dnf.push_back({{"status", Value("final")}, {"code", Value("glucose")}});
  s.bool_hits = gateway.boolean_search("obs", q).size();

  s.range_hits = gateway
                     .range_search("obs", "effective", Value(std::int64_t{1357000000}),
                                   Value(std::int64_t{1380000000}))
                     .size();
  s.avg = gateway.aggregate("obs", "value", schema::Aggregate::kAverage).value;
  s.cloud_bytes = cloud.storage_bytes();
  s.wire_bytes = channel.stats().bytes_sent.load() +
                 channel.stats().bytes_received.load();
  return s;
}

}  // namespace

int main() {
  const char* flavours[] = {"baseline", "space-opt", "ore-resting"};
  std::printf("%-12s %-10s %-6s %-10s %-6s %-7s %-12s %-12s\n", "config", "boolean",
              "hits", "range", "hits", "avg", "cloud bytes", "wire bytes");
  std::printf("%.*s\n", 84,
              "------------------------------------------------------------------------------------");
  RunStats baseline;
  for (const char* flavour : flavours) {
    const core::TacticRegistry registry = make_registry(flavour);
    const RunStats s = run_application(registry);
    if (std::string(flavour) == "baseline") baseline = s;
    std::printf("%-12s %-10s %-6zu %-10s %-6zu %-7.2f %-12zu %-12llu\n", flavour,
                s.boolean_tactic.c_str(), s.bool_hits, s.range_tactic.c_str(),
                s.range_hits, s.avg, s.cloud_bytes,
                static_cast<unsigned long long>(s.wire_bytes));
    // Crypto agility contract: identical answers under every configuration.
    if (s.bool_hits != baseline.bool_hits || s.range_hits != baseline.range_hits) {
      std::printf("!! configurations disagree — tactic swap changed semantics\n");
      return 1;
    }
  }
  std::printf(
      "\nSame application, same answers; swapping tactics changed only the\n"
      "footprint and the leakage profile. That is crypto agility.\n");
  return 0;
}
