// Cloud-native deployment — the paper's concluding research direction,
// running: "the gateway is a stateless data access middleware ... a
// challenging research direction towards secure cloud-native systems is to
// design efficient stateless SE schemes."
//
// Two independent gateway REPLICAS (no shared local state, only the same
// master key) serve one encrypted corpus concurrently:
//   * replica A bulk-ingests the corpus with insert_many (all index
//     updates batched into one cloud round trip),
//   * replica B — which has never seen a single write — serves searches
//     immediately, because the Mitra-SL tactic keeps the keyword counters
//     encrypted at the cloud instead of in gateway memory,
//   * replica A then "crashes" (is destroyed); replica B keeps writing and
//     reading without any recovery procedure.
//
// Build & run:  ./build/examples/cloud_native
#include <cstdio>
#include <memory>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "core/tactics/mitra_stateless_tactic.hpp"
#include "fhir/observation.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

namespace {
core::TacticRegistry cloud_native_registry() {
  core::TacticRegistry r;
  core::register_det_tactic(r);
  core::register_rnd_tactic(r);
  core::register_mitra_tactic(r);
  {
    // Promote the stateless variant over stateful Mitra.
    core::TacticDescriptor d = core::MitraStatelessTactic::static_descriptor();
    d.preference = 100;
    r.register_field_tactic(std::move(d), [](const core::GatewayContext& ctx) {
      return std::make_unique<core::MitraStatelessTactic>(ctx);
    });
  }
  core::register_sophos_tactic(r);
  core::register_biex2lev_tactic(r);
  core::register_biexzmf_tactic(r);
  core::register_ope_tactic(r);
  core::register_rangebrc_tactic(r);
  core::register_ore_tactic(r);
  core::register_paillier_tactic(r);
  return r;
}

schema::Schema ward_schema() {
  schema::Schema s("ward");
  schema::FieldAnnotation subject;
  subject.type = schema::FieldType::kString;
  subject.sensitive = true;
  subject.protection = schema::ProtectionClass::kClass2;
  subject.operations = {schema::Operation::kInsert, schema::Operation::kEquality};
  s.field("subject", subject);

  schema::FieldAnnotation bpm;
  bpm.type = schema::FieldType::kInt;
  bpm.sensitive = true;
  // C5 -> OPE. Deliberate: OPE is inherently stateless (deterministic
  // cipher, cloud-side ordered index), so any replica can serve ranges.
  // The stronger RangeBRC (C3) would avoid order leakage but keeps dyadic
  // counters at the gateway — the protection-vs-statelessness tension the
  // paper's conclusion describes. Pick per field, like everything else.
  bpm.protection = schema::ProtectionClass::kClass5;
  bpm.operations = {schema::Operation::kInsert, schema::Operation::kRange};
  s.field("bpm", bpm);
  return s;
}
}  // namespace

int main() {
  // One untrusted cloud; any number of trusted-zone replicas.
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  const Bytes master(32, 42);  // shared via the org's KMS in reality
  const core::TacticRegistry registry = cloud_native_registry();

  // --- replica A: bulk ingest -----------------------------------------------
  auto kms_a = std::make_unique<kms::KeyManager>(master);
  auto local_a = std::make_unique<store::KvStore>();
  auto replica_a = std::make_unique<core::Gateway>(rpc, *kms_a, *local_a, registry,
                                                   core::GatewayConfig{});
  replica_a->register_schema(ward_schema());
  std::printf("replica A selection: subject -> %s, bpm -> %s\n",
              replica_a->plan("ward").fields.at("subject").eq_tactic.c_str(),
              replica_a->plan("ward").fields.at("bpm").range_tactic.c_str());

  DetRng rng(7);
  std::vector<Document> corpus;
  const char* patients[] = {"ada", "grace", "alan", "edsger"};
  for (int i = 0; i < 120; ++i) {
    Document d;
    d.set("subject", Value(patients[rng.uniform(4)]));
    d.set("bpm", Value(rng.range(50, 160)));
    corpus.push_back(std::move(d));
  }
  const std::uint64_t before = channel.stats().round_trips.load();
  replica_a->insert_many("ward", std::move(corpus));
  std::printf("replica A ingested 120 documents");
  std::printf(" (batched round trips beyond the Mitra-SL counter reads: %llu total)\n",
              static_cast<unsigned long long>(channel.stats().round_trips.load() - before));

  // --- replica B: fresh process, zero state, serves immediately -------------
  kms::KeyManager kms_b(master);
  store::KvStore local_b;
  core::Gateway replica_b(rpc, kms_b, local_b, registry, core::GatewayConfig{});
  replica_b.register_schema(ward_schema());
  std::printf("replica B (no local state): ada has %zu observations\n",
              replica_b.equality_search("ward", "subject", Value("ada")).size());
  std::printf("replica B: tachycardia (bpm > 120, via stateless OPE): %zu\n",
              replica_b
                  .range_search("ward", "bpm", Value(std::int64_t{121}),
                                Value(std::int64_t{300}))
                  .size());

  // --- replica A crashes; B keeps the service running ------------------------
  replica_a.reset();
  local_a.reset();
  kms_a.reset();
  Document d;
  d.set("subject", Value("ada"));
  d.set("bpm", Value(std::int64_t{72}));
  replica_b.insert("ward", d);
  std::printf("after replica A crashed, replica B kept writing: ada now has %zu\n",
              replica_b.equality_search("ward", "subject", Value("ada")).size());

  std::printf("\nNo failover protocol, no state replication: the encrypted\n"
              "counters live with the data. That is the stateless-SE direction\n"
              "the paper's conclusion sketches, running.\n");
  return 0;
}
