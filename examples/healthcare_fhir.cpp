// Healthcare use case — the paper's §5.1 worked example, end to end.
//
// An FHIR-compliant Observation (the f001 glucose measurement) is stored
// through DataBlinder under the exact annotations of the paper:
//
//   status     C3, op [I, EQ, BL]      -> BIEX-2Lev   (boolean & cross-field)
//   code       C3, op [I, EQ, BL]      -> BIEX-2Lev
//   subject    C2, op [I, EQ]          -> Mitra       (identifier protection)
//   effective  C5, op [I, EQ, BL, RG]  -> DET, OPE    (range queries)
//   issued     C5, op [I, EQ, BL, RG]  -> DET, OPE
//   performer  C1, op [I]              -> RND         (structure protection)
//   value      C3, op [I, EQ, BL] +avg -> BIEX-2Lev, Paillier
//
// and then every motivating query from the paper's introduction runs over
// the encrypted data: boolean search, range search, and aggregates.
//
// Build & run:  ./build/examples/healthcare_fhir
#include <cstdio>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "doc/json.hpp"
#include "fhir/observation.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

int main() {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore gateway_store;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gateway(rpc, kms, gateway_store, registry,
                        core::GatewayConfig{{{"paillier_modulus_bits", "512"}}});

  gateway.register_schema(fhir::observation_schema("observations"));
  std::printf("== Tactic selection (paper §5.1) ==\n%s\n",
              gateway.plan("observations").to_table().c_str());

  // The paper's example document.
  Document f001 = doc::parse_document_json(R"({
    "id": "f001",
    "identifier": 6323,
    "status": "final",
    "code": "glucose",
    "subject": "John Doe",
    "effective": 1359966610,
    "issued": 1362407410,
    "performer": "John Smith",
    "value": 6.3,
    "interpretation": "High"
  })");
  gateway.insert("observations", f001);

  // A synthetic ward of further observations.
  fhir::ObservationGenerator gen(2019);
  for (int i = 0; i < 200; ++i) gateway.insert("observations", gen.next());

  // "finding the patient with a particular gastric cancer who was admitted
  //  to the hospital in 12/05/2012" — boolean search.
  core::FieldBoolQuery q;
  q.dnf.push_back({{"status", Value("final")}, {"code", Value("glucose")}});
  const auto final_glucose = gateway.boolean_search("observations", q);
  std::printf("boolean  status=final AND code=glucose  -> %zu documents\n",
              final_glucose.size());

  // Identifier-protected patient lookup (Mitra, forward private).
  const auto johns = gateway.equality_search("observations", "subject",
                                             Value("John Doe"));
  std::printf("equality subject=\"John Doe\"            -> %zu documents\n",
              johns.size());
  for (const auto& d : johns) {
    if (d.id == "f001") {
      std::printf("  f001 decrypted at the gateway: %s\n", doc::to_json(d).c_str());
    }
  }

  // "patients' health problems between particular date ranges" — OPE range.
  const auto feb2013 = gateway.range_search("observations", "effective",
                                            Value(std::int64_t{1359676800}),
                                            Value(std::int64_t{1362095999}));
  std::printf("range    effective in Feb 2013          -> %zu documents\n",
              feb2013.size());

  // "calculating the average heart rate of a patient" — Paillier average.
  const auto avg = gateway.aggregate("observations", "value",
                                     schema::Aggregate::kAverage);
  std::printf("average  value (homomorphic, cloud-side) -> %.2f over %llu docs\n",
              avg.value, static_cast<unsigned long long>(avg.count));

  // What the cloud actually holds.
  std::printf("\n== Untrusted-zone footprint ==\n");
  std::printf("cloud storage:    %zu bytes (AEAD blobs + PRF-labelled indexes)\n",
              cloud.storage_bytes());
  std::printf("secure index ops: %llu\n",
              static_cast<unsigned long long>(cloud.index_ops()));
  std::printf("wire traffic:     %llu bytes out, %llu bytes in, %llu round trips\n",
              static_cast<unsigned long long>(channel.stats().bytes_sent.load()),
              static_cast<unsigned long long>(channel.stats().bytes_received.load()),
              static_cast<unsigned long long>(channel.stats().round_trips.load()));
  return 0;
}
