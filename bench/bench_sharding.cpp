// bench_sharding — horizontal scale-out of the S_C (full DataBlinder
// gateway) read path across 1 / 2 / 4 / 8 consistent-hash shards.
//
// Every channel carries a serialized per-request service reservation
// (ChannelConfig::service_time_us) modeling a single-threaded shard node
// working through its queue, plus a small overlappable propagation delay.
// One shard therefore bottlenecks on ONE service queue; N shards are N
// independent queues, so closed-loop throughput scales with the shard
// count even on a single-core host (the scaling being measured is
// queueing capacity, not local CPU parallelism).
//
// Workload per user thread (16 users, closed loop): 90% point reads of
// preloaded documents (doc.get — routed to the owning shard), 10%
// equality searches on the Mitra-indexed subject field (trapdoor
// scatter + per-shard doc.mget + ordered merge — the two-round-trip
// scatter path of the exec planner). Point reads dominate because they
// are the operation scale-out genuinely multiplies: a search fans its
// trapdoors and candidate fetches across shards, so its capacity cost
// grows with the shard count even though its latency stays flat.
//
// Emits BENCH_sharding.json and exits non-zero when 8-shard throughput
// is below 3x the 1-shard figure, or when any sharded run returns
// results inconsistent with the 1-shard run.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/stopwatch.hpp"
#include "core/gateway.hpp"
#include "core/sharding.hpp"
#include "core/tactics/builtin.hpp"
#include "fhir/observation.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

namespace {

constexpr std::size_t kUsers = 32;
constexpr std::size_t kPreload = 224;
constexpr std::size_t kRequests = 1600;
constexpr std::uint64_t kServiceUs = 1000;   // serialized per-request service
constexpr std::uint64_t kLatencyUs = 100;   // overlappable one-way delay
const std::size_t kShardCounts[] = {1, 2, 4, 8};

core::TacticRegistry& registry() {
  static core::TacticRegistry r = [] {
    core::TacticRegistry reg;
    core::register_builtin_tactics(reg);
    return reg;
  }();
  return r;
}

struct RunOut {
  double ops_per_s = 0.0;
  std::uint64_t scatters = 0;    // core.shard.scatter
  std::uint64_t subcalls = 0;    // core.shard.subcalls
  std::uint64_t checksum = 0;    // order-sensitive digest of search results
};

RunOut run(std::size_t shards) {
  core::GatewayConfig cfg;
  cfg.tactic_params = {{"paillier_modulus_bits", "256"}};
  cfg.shards = shards;

  net::ChannelConfig ch;
  ch.one_way_latency_us = kLatencyUs;
  ch.service_time_us = kServiceUs;

  core::ShardedCloud cloud(cfg, ch);
  kms::KeyManager kms(Bytes(32, 7));
  store::KvStore local;
  core::Gateway gw(cloud.client(), kms, local, registry(), cfg);
  gw.register_schema(fhir::benchmark_schema("obs"));

  fhir::ObservationGenerator gen(11);
  std::vector<std::string> ids;
  ids.reserve(kPreload);
  for (std::size_t i = 0; i < kPreload; ++i) {
    Document d = gen.next();
    d.id = "sdoc-" + std::to_string(i);
    ids.push_back(gw.insert("obs", d));
  }

  // Fixed per-user quotas keep the issued operation set identical across
  // runs and shard counts (a shared countdown would let scheduling decide
  // how many ops each seeded generator contributes).
  static_assert(kRequests % kUsers == 0);
  constexpr std::size_t kPerUser = kRequests / kUsers;
  std::atomic<std::uint64_t> checksum{0};
  auto user_fn = [&](std::size_t user) {
    fhir::ObservationGenerator ugen(101 + user);
    std::uint64_t local_sum = 0;
    for (std::size_t op = 0; op < kPerUser; ++op) {
      if (ugen.rng().real() < 0.9) {
        const Document d =
            gw.read("obs", ids[ugen.rng().uniform(static_cast<std::uint32_t>(ids.size()))]);
        local_sum += d.id.size();
      } else {
        // Alternate the two sharded search shapes: DET status (label
        // routed trapdoor, then candidate-mget scatter) and Mitra subject
        // (trapdoor scatter AND candidate-mget scatter).
        const auto docs =
            (op % 2) == 0
                ? gw.equality_search("obs", "status", ugen.random_status())
                : gw.equality_search("obs", "subject", ugen.random_subject());
        // Order-sensitive: the sharded merge must re-emit candidates in
        // the same order the 1-shard path would.
        for (std::size_t i = 0; i < docs.size(); ++i) {
          local_sum += (i + 1) * docs[i].id.size();
        }
      }
    }
    checksum.fetch_add(local_sum, std::memory_order_relaxed);
  };

  Stopwatch sw;
  std::vector<std::thread> users;
  users.reserve(kUsers);
  for (std::size_t u = 0; u < kUsers; ++u) users.emplace_back(user_fn, u);
  for (auto& t : users) t.join();
  const double secs = sw.elapsed_s();

  RunOut out;
  out.ops_per_s = static_cast<double>(kRequests) / secs;
  out.scatters = gw.perf().counter("core.shard.scatter");
  out.subcalls = gw.perf().counter("core.shard.subcalls");
  out.checksum = checksum.load();
  return out;
}

}  // namespace

int main() {
  std::printf("== S_C scale-out: %zu requests, %zu users, %llu us service, "
              "%llu us one-way ==\n\n",
              kRequests, kUsers, static_cast<unsigned long long>(kServiceUs),
              static_cast<unsigned long long>(kLatencyUs));

  RunOut results[4];
  for (std::size_t i = 0; i < 4; ++i) {
    results[i] = run(kShardCounts[i]);
    const double speedup = results[i].ops_per_s / results[0].ops_per_s;
    const double efficiency =
        speedup / static_cast<double>(kShardCounts[i]);
    std::printf("%zu shard%s: %8.1f ops/s   speedup %5.2fx   efficiency %4.0f%%   "
                "(scatters=%llu subcalls=%llu)\n",
                kShardCounts[i], kShardCounts[i] == 1 ? " " : "s",
                results[i].ops_per_s, speedup, 100.0 * efficiency,
                static_cast<unsigned long long>(results[i].scatters),
                static_cast<unsigned long long>(results[i].subcalls));
  }

  // The workload is seeded, so every run issues the same operations; equal
  // checksums mean every sharded configuration returned the same documents
  // in the same order as the 1-shard baseline.
  bool identical = true;
  for (std::size_t i = 1; i < 4; ++i) {
    if (results[i].checksum != results[0].checksum) identical = false;
  }

  const double speedup8 = results[3].ops_per_s / results[0].ops_per_s;
  std::printf("\n8-shard speedup over 1 shard: %.2fx (want >= 3x); "
              "results identical across shard counts: %s\n",
              speedup8, identical ? "yes" : "NO");

  std::FILE* f = std::fopen("BENCH_sharding.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"users\": %zu,\n"
                 "  \"requests\": %zu,\n"
                 "  \"service_time_us\": %llu,\n"
                 "  \"one_way_latency_us\": %llu,\n"
                 "  \"ops_per_s_1\": %.1f,\n"
                 "  \"ops_per_s_2\": %.1f,\n"
                 "  \"ops_per_s_4\": %.1f,\n"
                 "  \"ops_per_s_8\": %.1f,\n"
                 "  \"speedup_2\": %.2f,\n"
                 "  \"speedup_4\": %.2f,\n"
                 "  \"speedup_8\": %.2f,\n"
                 "  \"efficiency_8\": %.2f,\n"
                 "  \"results_identical\": %s\n"
                 "}\n",
                 kUsers, kRequests, static_cast<unsigned long long>(kServiceUs),
                 static_cast<unsigned long long>(kLatencyUs), results[0].ops_per_s,
                 results[1].ops_per_s, results[2].ops_per_s, results[3].ops_per_s,
                 results[1].ops_per_s / results[0].ops_per_s,
                 results[2].ops_per_s / results[0].ops_per_s, speedup8,
                 speedup8 / 8.0, identical ? "true" : "false");
    std::fclose(f);
  }

  bool ok = true;
  if (speedup8 < 3.0) {
    std::fprintf(stderr, "FAIL: 8-shard throughput %.1f ops/s is only %.2fx the "
                 "1-shard %.1f ops/s (want >= 3x)\n",
                 results[3].ops_per_s, speedup8, results[0].ops_per_s);
    ok = false;
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: sharded runs returned different results than the "
                 "1-shard baseline\n");
    ok = false;
  }
  if (ok) std::printf("\nsharding scale-out assertions OK\n");
  return ok ? 0 : 1;
}
