// Figure 5 reproduction — per-operation and overall throughput of the
// three scenarios:
//   S_A  plaintext application, no middleware, no tactics
//   S_B  the 8 tactics (Mitra, RND, Paillier, 5x DET) hard-coded
//   S_C  the same tactics enforced through DataBlinder
//
// The paper reports ~44% overall throughput loss from the tactics and only
// ~1.4% additional loss from the middleware layer. Absolute numbers differ
// (their testbed was two OpenStack/public-cloud VMs driven by Locust with
// 1000 users and ~151k requests; ours is an in-process deployment with a
// simulated channel) — the reproduced quantity is the *decomposition*:
// S_A >> S_B ~= S_C, with S_C within a few percent of S_B.
//
// Environment knobs: FIG5_REQUESTS (default 2400), FIG5_USERS (12),
// FIG5_PRELOAD (300), FIG5_LATENCY_US (simulated one-way WAN delay, 0),
// FIG5_SHARDS (cloud shard count, 1; also settable as `--shards N`).
// Adding WAN delay makes the plaintext baseline pay realistic network
// costs per operation, compressing the S_A->S_B gap toward the paper's
// testbed ratio (their S_A was bottlenecked by a real MongoDB over a real
// network; the in-process default measures the pure CPU ratio instead).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/tactics/builtin.hpp"
#include "workload/loadgen.hpp"
#include "workload/scenarios.hpp"

using namespace datablinder;
using namespace datablinder::workload;

namespace {
std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v ? static_cast<std::size_t>(std::atoll(v)) : fallback;
}
}  // namespace

int main(int argc, char** argv) {
  LoadConfig cfg;
  cfg.total_requests = env_or("FIG5_REQUESTS", 2400);
  cfg.users = env_or("FIG5_USERS", 12);
  cfg.preload_documents = env_or("FIG5_PRELOAD", 300);

  net::ChannelConfig channel_cfg;
  channel_cfg.one_way_latency_us = env_or("FIG5_LATENCY_US", 0);

  std::size_t shards = env_or("FIG5_SHARDS", 1);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::atoll(argv[i + 1]));
      ++i;
    }
  }
  if (shards == 0) shards = 1;

  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);

  std::printf("== Figure 5: throughput comparison "
              "(%zu requests, %zu users, %zu preloaded docs, %llu us one-way, "
              "%zu shard%s) ==\n\n",
              cfg.total_requests, cfg.users, cfg.preload_documents,
              static_cast<unsigned long long>(channel_cfg.one_way_latency_us),
              shards, shards == 1 ? "" : "s");

  RunResult results[3];
  {
    ScenarioHarness h(channel_cfg, shards);
    ScenarioA s(h);
    results[0] = run_load(s, cfg);
    std::printf("%s\n", results[0].to_report().c_str());
  }
  {
    ScenarioHarness h(channel_cfg, shards);
    ScenarioB s(h);
    results[1] = run_load(s, cfg);
    std::printf("%s\n", results[1].to_report().c_str());
  }
  {
    ScenarioHarness h(channel_cfg, shards);
    ScenarioC s(h, registry);
    results[2] = run_load(s, cfg);
    std::printf("%s\n", results[2].to_report().c_str());
    std::printf("secure index operations during S_C run: %llu\n\n",
                static_cast<unsigned long long>(h.cloud.index_ops()));
  }

  // The Figure 5 bars, normalized.
  std::printf("%-12s %12s %12s %12s %12s\n", "scenario", "write rps", "read rps",
              "agg rps", "overall rps");
  for (const auto& r : results) {
    std::printf("%-12s %12.1f %12.1f %12.1f %12.1f\n", r.scenario.substr(0, 3).c_str(),
                r.write.throughput_rps, r.read.throughput_rps,
                r.aggregate.throughput_rps, r.overall_throughput_rps);
  }

  const double tactic_loss =
      100.0 * (1.0 - results[1].overall_throughput_rps / results[0].overall_throughput_rps);
  const double middleware_loss =
      100.0 * (1.0 - results[2].overall_throughput_rps / results[1].overall_throughput_rps);
  std::printf(
      "\noverall throughput loss from data-protection tactics (S_A -> S_B): %5.1f%%"
      "   [paper: ~44%%]\n"
      "additional loss from the middleware layer        (S_B -> S_C): %5.1f%%"
      "   [paper: ~1.4%%]\n",
      tactic_loss, middleware_loss);
  return 0;
}
