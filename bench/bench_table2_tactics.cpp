// Table 2 reproduction — the tactic catalogue.
//
// For every implemented construction this prints the paper's columns
// (protection class, leakage, gateway/cloud SPI interface counts,
// challenge) from the live registry descriptors, then *measures* each
// tactic's setup / insert / query protocol latency through a real
// gateway-cloud deployment. Section 2 prints the Table 1 SPI matrix.
#include <cstdio>
#include <functional>
#include <string>

#include "common/stopwatch.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/biexzmf_tactic.hpp"
#include "core/tactics/builtin.hpp"
#include "core/tactics/ore_tactic.hpp"
#include "core/tactics/sophos_tactic.hpp"
#include "fhir/observation.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

namespace {

struct Rig {
  Rig(const core::TacticRegistry& registry)
      : rpc(cloud.rpc(), channel),
        gateway(rpc, kms, local, registry,
                core::GatewayConfig{{{"paillier_modulus_bits", "512"},
                                     {"paillier_pool", "8"},
                                     {"sophos_modulus_bits", "768"}}}) {}
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc;
  kms::KeyManager kms;
  store::KvStore local;
  core::Gateway gateway;
};

core::TacticRegistry default_registry() {
  core::TacticRegistry r;
  core::register_builtin_tactics(r);
  return r;
}

core::TacticRegistry promoted_registry(const std::string& tactic) {
  core::TacticRegistry r;
  core::register_det_tactic(r);
  core::register_rnd_tactic(r);
  core::register_mitra_tactic(r);
  if (tactic == "Sophos") {
    core::TacticDescriptor d = core::SophosTactic::static_descriptor();
    d.preference = 100;
    r.register_field_tactic(std::move(d), [](const core::GatewayContext& ctx) {
      return std::make_unique<core::SophosTactic>(ctx);
    });
  } else {
    core::register_sophos_tactic(r);
  }
  core::register_biex2lev_tactic(r);
  if (tactic == "BIEX-ZMF") {
    core::TacticDescriptor d = core::BiexZmfTactic::static_descriptor();
    d.preference = 100;
    r.register_boolean_tactic(std::move(d), [](const core::GatewayContext& ctx) {
      return std::make_unique<core::BiexZmfTactic>(ctx);
    });
  } else {
    core::register_biexzmf_tactic(r);
  }
  core::register_ope_tactic(r);
  if (tactic == "ORE") {
    core::TacticDescriptor d = core::OreTactic::static_descriptor();
    d.preference = 100;
    r.register_field_tactic(std::move(d), [](const core::GatewayContext& ctx) {
      return std::make_unique<core::OreTactic>(ctx);
    });
  } else {
    core::register_ore_tactic(r);
  }
  core::register_paillier_tactic(r);
  return r;
}

schema::Schema one_field_schema(schema::ProtectionClass cls,
                                std::set<schema::Operation> ops,
                                std::set<schema::Aggregate> aggs,
                                schema::FieldType type) {
  schema::Schema s("t2");
  schema::FieldAnnotation f;
  f.type = type;
  f.sensitive = true;
  f.protection = cls;
  f.operations = std::move(ops);
  f.aggregates = std::move(aggs);
  s.field("f", f);
  return s;
}

struct Measured {
  double setup_ms = 0;
  double insert_us = 0;
  double query_us = 0;
};

/// Inserts N docs and runs Q queries against the single-field schema,
/// timing each protocol phase.
Measured measure(const core::TacticRegistry& registry, const schema::Schema& s,
                 schema::FieldType type,
                 const std::function<void(core::Gateway&)>& query, int inserts = 150,
                 int queries = 25) {
  Rig rig(registry);
  Measured m;
  Stopwatch sw;
  rig.gateway.register_schema(s);
  m.setup_ms = sw.elapsed_ms();

  DetRng rng(7);
  sw.reset();
  for (int i = 0; i < inserts; ++i) {
    Document d;
    if (type == schema::FieldType::kString) {
      d.set("f", Value("v" + std::to_string(rng.uniform(8))));
    } else if (type == schema::FieldType::kDouble) {
      d.set("f", Value(static_cast<double>(rng.range(10, 200)) / 10.0));
    } else {
      d.set("f", Value(rng.range(0, 100000)));
    }
    rig.gateway.insert("t2", d);
  }
  m.insert_us = sw.elapsed_us() / inserts;

  sw.reset();
  for (int i = 0; i < queries; ++i) query(rig.gateway);
  m.query_us = sw.elapsed_us() / queries;
  return m;
}

void print_row(const core::TacticDescriptor& d, const char* operation,
               const Measured& m) {
  // Leakage column: the query operation's leakage (the per-operation
  // reification of Fig. 1 collapsed to the headline Table 2 value).
  std::string leakage = "-";
  for (const auto& op : {core::TacticOperation::kEqualitySearch,
                         core::TacticOperation::kBooleanSearch,
                         core::TacticOperation::kRangeQuery}) {
    auto it = d.operations.find(op);
    if (it != d.operations.end()) {
      leakage = to_string(it->second.leakage);
      break;
    }
  }
  const bool has_class = d.serves_aggregates.empty() || !d.serves_operations.count(
      schema::Operation::kEquality) ? true : true;
  (void)has_class;
  const std::string cls =
      d.name == "Paillier" ? "-" : std::to_string(static_cast<int>(d.protection_class));
  std::printf("%-16s %-10s %-6s %-12s %3zu  %3zu   %-26s %9.2f %9.1f %9.1f\n",
              operation, d.name.c_str(), cls.c_str(),
              d.name == "Paillier" ? "-" : leakage.c_str(),
              d.gateway_interfaces.size(), d.cloud_interfaces.size(),
              d.challenge.c_str(), m.setup_ms, m.insert_us, m.query_us);
}

}  // namespace

int main() {
  using schema::Aggregate;
  using schema::FieldType;
  using schema::Operation;
  using schema::ProtectionClass;

  std::printf("== Table 2: implemented constructions (descriptors + measured protocol costs) ==\n\n");
  std::printf("%-16s %-10s %-6s %-12s %-4s %-5s %-26s %9s %9s %9s\n", "Operation",
              "Scheme", "Class", "Leakage", "GW", "Cloud", "Challenge", "setup/ms",
              "insert/us", "query/us");
  std::printf("%s\n", std::string(125, '-').c_str());

  const auto reg = default_registry();

  // --- Equality search -------------------------------------------------------
  {
    const auto s = one_field_schema(ProtectionClass::kClass4,
                                    {Operation::kInsert, Operation::kEquality}, {},
                                    FieldType::kString);
    const Measured m = measure(reg, s, FieldType::kString, [](core::Gateway& g) {
      g.equality_search("t2", "f", Value("v3"));
    });
    print_row(reg.descriptor("DET"), "Equality Search", m);
  }
  {
    const auto s = one_field_schema(ProtectionClass::kClass2,
                                    {Operation::kInsert, Operation::kEquality}, {},
                                    FieldType::kString);
    const Measured m = measure(reg, s, FieldType::kString, [](core::Gateway& g) {
      g.equality_search("t2", "f", Value("v3"));
    });
    print_row(reg.descriptor("Mitra"), "", m);
  }
  {
    const auto sophos_reg = promoted_registry("Sophos");
    const auto s = one_field_schema(ProtectionClass::kClass2,
                                    {Operation::kInsert, Operation::kEquality}, {},
                                    FieldType::kString);
    const Measured m = measure(sophos_reg, s, FieldType::kString, [](core::Gateway& g) {
      g.equality_search("t2", "f", Value("v3"));
    });
    print_row(reg.descriptor("Sophos"), "", m);
  }
  {
    const auto s = one_field_schema(ProtectionClass::kClass1,
                                    {Operation::kInsert, Operation::kEquality}, {},
                                    FieldType::kString);
    const Measured m = measure(reg, s, FieldType::kString, [](core::Gateway& g) {
      g.equality_search("t2", "f", Value("v3"));
    });
    print_row(reg.descriptor("RND"), "", m);
  }

  // --- Boolean search ---------------------------------------------------------
  {
    const auto s = one_field_schema(ProtectionClass::kClass3,
                                    {Operation::kInsert, Operation::kBoolean}, {},
                                    FieldType::kString);
    const Measured m = measure(reg, s, FieldType::kString, [](core::Gateway& g) {
      core::FieldBoolQuery q;
      q.dnf.push_back({{"f", Value("v3")}});
      g.boolean_search("t2", q);
    });
    print_row(reg.descriptor("BIEX-2Lev"), "Boolean Search", m);
  }
  {
    const auto zmf_reg = promoted_registry("BIEX-ZMF");
    const auto s = one_field_schema(ProtectionClass::kClass3,
                                    {Operation::kInsert, Operation::kBoolean}, {},
                                    FieldType::kString);
    const Measured m = measure(zmf_reg, s, FieldType::kString, [](core::Gateway& g) {
      core::FieldBoolQuery q;
      q.dnf.push_back({{"f", Value("v3")}});
      g.boolean_search("t2", q);
    });
    print_row(reg.descriptor("BIEX-ZMF"), "", m);
  }

  // --- Range query ---------------------------------------------------------------
  {
    const auto s = one_field_schema(ProtectionClass::kClass5,
                                    {Operation::kInsert, Operation::kRange}, {},
                                    FieldType::kInt);
    const Measured m = measure(reg, s, FieldType::kInt, [](core::Gateway& g) {
      g.range_search("t2", "f", Value(std::int64_t{20000}), Value(std::int64_t{40000}));
    });
    print_row(reg.descriptor("OPE"), "Range Query", m);
  }
  {
    const auto ore_reg = promoted_registry("ORE");
    const auto s = one_field_schema(ProtectionClass::kClass5,
                                    {Operation::kInsert, Operation::kRange}, {},
                                    FieldType::kInt);
    const Measured m = measure(ore_reg, s, FieldType::kInt, [](core::Gateway& g) {
      g.range_search("t2", "f", Value(std::int64_t{20000}), Value(std::int64_t{40000}));
    });
    print_row(reg.descriptor("ORE"), "", m);
  }

  // --- Aggregates ------------------------------------------------------------------
  {
    const auto s = one_field_schema(ProtectionClass::kClass1, {Operation::kInsert},
                                    {Aggregate::kSum}, FieldType::kDouble);
    const Measured m = measure(reg, s, FieldType::kDouble, [](core::Gateway& g) {
      g.aggregate("t2", "f", Aggregate::kSum);
    });
    print_row(reg.descriptor("Paillier"), "Sum", m);
  }
  {
    const auto s = one_field_schema(ProtectionClass::kClass1, {Operation::kInsert},
                                    {Aggregate::kAverage}, FieldType::kDouble);
    const Measured m = measure(reg, s, FieldType::kDouble, [](core::Gateway& g) {
      g.aggregate("t2", "f", Aggregate::kAverage);
    });
    print_row(reg.descriptor("Paillier"), "Average", m);
  }

  std::printf("\nPaper Table 2 reference counts (gateway/cloud): DET 9/6, Mitra 7/5, "
              "Sophos 6/4,\nRND 6/4, BIEX-2Lev 8/5, BIEX-ZMF 8/5, OPE 3/3, ORE 3/3, "
              "Paillier 3/3.\n");

  // --- Table 1: the SPI matrix -----------------------------------------------------
  std::printf("\n== Table 1: Service Provider Interfaces per tactic ==\n\n");
  for (const auto& name : reg.names()) {
    const auto& d = reg.descriptor(name);
    std::printf("%-10s gateway {", name.c_str());
    bool first = true;
    for (const auto spi : d.gateway_interfaces) {
      std::printf("%s%s", first ? "" : ", ", to_string(spi).c_str());
      first = false;
    }
    std::printf("}\n%-10s cloud   {", "");
    first = true;
    for (const auto spi : d.cloud_interfaces) {
      std::printf("%s%s", first ? "" : ", ", to_string(spi).c_str());
      first = false;
    }
    std::printf("}\n");
  }
  return 0;
}
