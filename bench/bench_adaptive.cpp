// bench_adaptive — CI-checkable proof that adaptive selection converges
// and that the hot-path cache earns its keep.
//
// Setup mirrors bench_ablation_ranges' promoted registry: ORE gets
// preference 100, so the §5.1 static table picks ORE for the C5 range
// field — a deliberately poor static choice (O(N) token comparisons per
// query). With adaptive_selection on, the cost model's priors already
// rank OPE well clear of ORE at this cardinality and selectivity, so the
// plan must switch within hysteresis_windows decisions; from then on the
// hot cache serves repeat OPE bound labels and decrypted documents.
//
// RangeBRC is deliberately absent from this registry: its range prior
// sits inside the hysteresis band of OPE's, so the steady-state choice
// between the two is machine-dependent — the convergence assertion wants
// a deterministic winner. bench_ablation_ranges keeps the full triangle.
//
// Emits BENCH_adaptive.json and exits non-zero when adaptation fails to
// converge to OPE, when the query-phase cache hit ratio is <= 0.9, or
// when the adaptive steady state is not faster than the static baseline.
#include <cstdio>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "core/tactics/ore_tactic.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

namespace {

constexpr int kDocs = 300;
constexpr int kQueries = 40;
// Fixed 2% window: every run asks the same narrow question, the shape the
// cache and the cost model's default_selectivity are tuned for below.
constexpr std::int64_t kLo = 450000, kHi = 470000;

core::TacticRegistry make_registry() {
  core::TacticRegistry r;
  core::register_det_tactic(r);
  core::register_rnd_tactic(r);
  core::register_mitra_tactic(r);
  core::register_biex2lev_tactic(r);
  core::TacticDescriptor d = core::OreTactic::static_descriptor();
  d.preference = 100;  // outbid OPE in the static table
  r.register_field_tactic(std::move(d), [](const core::GatewayContext& ctx) {
    return std::make_unique<core::OreTactic>(ctx);
  });
  core::register_ope_tactic(r);
  return r;
}

schema::Schema make_schema() {
  schema::Schema s("ts_col");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kInt;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass5;
  f.operations = {schema::Operation::kInsert, schema::Operation::kRange};
  s.field("ts", f);
  return s;
}

struct Run {
  double mean_query_us = 0.0;    // over the whole query phase
  double steady_query_us = 0.0;  // over the last half
  int converged_at = -1;         // first query answered by the cost model's switch
  std::string final_choice;
  double query_hit_ratio = 0.0;  // cache hits/(hits+misses) in the query phase only
};

Run run(bool adaptive) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  const core::TacticRegistry registry = make_registry();
  core::GatewayConfig cfg;
  if (adaptive) {
    cfg.adaptive_selection = true;
    cfg.hot_cache_capacity = 1024;
    cfg.cost.default_selectivity = 0.02;  // the 2% window above
  }
  core::Gateway gw(rpc, kms, local, registry, cfg);
  gw.register_schema(make_schema());
  if (gw.plan("ts_col").fields.at("ts").range_tactic != "ORE") {
    std::fprintf(stderr, "static table did not pick the promoted ORE\n");
    std::exit(1);
  }

  DetRng rng(17);
  for (int i = 0; i < kDocs; ++i) {
    Document d;
    d.set("ts", Value(rng.range(0, 1000000)));
    gw.insert("ts_col", d);
  }

  const std::uint64_t h0 = adaptive ? gw.cache()->hits() : 0;
  const std::uint64_t m0 = adaptive ? gw.cache()->misses() : 0;
  Run out;
  double total_us = 0.0, steady_us = 0.0;
  for (int q = 0; q < kQueries; ++q) {
    Stopwatch sw;
    const auto hits = gw.range_search("ts_col", "ts", Value(kLo), Value(kHi));
    const double us = sw.elapsed_us();
    if (hits.empty()) {
      std::fprintf(stderr, "query window is empty — bench is vacuous\n");
      std::exit(1);
    }
    total_us += us;
    if (q >= kQueries / 2) steady_us += us;
    if (adaptive && out.converged_at < 0 &&
        gw.plan("ts_col").fields.at("ts").range_chosen_by == "cost-model") {
      out.converged_at = q + 1;  // 1-based: "converged by query N"
    }
  }
  out.mean_query_us = total_us / kQueries;
  out.steady_query_us = steady_us / (kQueries - kQueries / 2);
  if (adaptive) {
    out.final_choice = gw.plan("ts_col").fields.at("ts").range_last_choice;
    const std::uint64_t h = gw.cache()->hits() - h0;
    const std::uint64_t m = gw.cache()->misses() - m0;
    out.query_hit_ratio =
        (h + m) == 0 ? 0.0 : static_cast<double>(h) / static_cast<double>(h + m);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== Adaptive selection vs promoted-ORE static table (%d docs, %d x 2%% range) ==\n\n",
              kDocs, kQueries);
  const Run st = run(false);
  const Run ad = run(true);
  const double speedup = st.steady_query_us / ad.steady_query_us;

  std::printf("%-28s %14s %14s\n", "", "static (ORE)", "adaptive");
  std::printf("%-28s %14.1f %14.1f\n", "mean query/us", st.mean_query_us, ad.mean_query_us);
  std::printf("%-28s %14.1f %14.1f\n", "steady-state query/us", st.steady_query_us,
              ad.steady_query_us);
  std::printf("%-28s %14s %14s\n", "final range tactic", "ORE", ad.final_choice.c_str());
  std::printf("%-28s %14s %14d\n", "converged by query", "-", ad.converged_at);
  std::printf("%-28s %14s %14.3f\n", "query-phase cache hit ratio", "-", ad.query_hit_ratio);
  std::printf("%-28s %14s %13.1fx\n", "steady-state speedup", "-", speedup);

  std::FILE* f = std::fopen("BENCH_adaptive.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"docs\": %d,\n"
                 "  \"queries\": %d,\n"
                 "  \"static_tactic\": \"ORE\",\n"
                 "  \"static_steady_query_us\": %.1f,\n"
                 "  \"adaptive_final_tactic\": \"%s\",\n"
                 "  \"adaptive_converged_by_query\": %d,\n"
                 "  \"adaptive_steady_query_us\": %.1f,\n"
                 "  \"adaptive_query_hit_ratio\": %.4f,\n"
                 "  \"steady_state_speedup\": %.2f\n"
                 "}\n",
                 kDocs, kQueries, st.steady_query_us, ad.final_choice.c_str(),
                 ad.converged_at, ad.steady_query_us, ad.query_hit_ratio, speedup);
    std::fclose(f);
  }

  bool ok = true;
  if (ad.final_choice != "OPE") {
    std::fprintf(stderr, "FAIL: adaptation did not converge to OPE (got '%s')\n",
                 ad.final_choice.c_str());
    ok = false;
  }
  if (ad.converged_at < 0 || ad.converged_at > 10) {
    std::fprintf(stderr, "FAIL: convergence took %d queries (want <= 10)\n",
                 ad.converged_at);
    ok = false;
  }
  if (ad.query_hit_ratio <= 0.9) {
    std::fprintf(stderr, "FAIL: query-phase cache hit ratio %.3f (want > 0.9)\n",
                 ad.query_hit_ratio);
    ok = false;
  }
  if (ad.steady_query_us >= st.steady_query_us) {
    std::fprintf(stderr, "FAIL: adaptive steady state %.1fus not faster than static %.1fus\n",
                 ad.steady_query_us, st.steady_query_us);
    ok = false;
  }
  if (ok) std::printf("\nadaptive convergence + cache assertions OK\n");
  return ok ? 0 : 1;
}
