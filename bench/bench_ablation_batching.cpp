// Ablation: deferred RPC batching for bulk ingest.
//
// Initial data outsourcing (the paper's setting: a business migrating its
// document corpus to the cloud) writes one document blob plus one index
// entry per tactic per document. Per-update round trips dominate once a
// real WAN sits between the zones; insert_many() ships the whole batch's
// fire-and-forget updates in one round trip. This bench quantifies the
// effect across simulated one-way delays.
//
// Environment knob: BATCH_DOCS (default 150).
#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "fhir/observation.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

namespace {

struct Row {
  double total_ms;
  std::uint64_t round_trips;
};

Row run(bool batched, std::uint64_t latency_us, std::size_t docs) {
  core::CloudNode cloud;
  net::ChannelConfig cfg;
  cfg.one_way_latency_us = latency_us;
  net::Channel channel(cfg);
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gateway(rpc, kms, local, registry,
                        core::GatewayConfig{{{"paillier_modulus_bits", "384"}}});
  gateway.register_schema(fhir::benchmark_schema("obs"));

  fhir::ObservationGenerator gen(3);
  std::vector<Document> corpus;
  corpus.reserve(docs);
  for (std::size_t i = 0; i < docs; ++i) corpus.push_back(gen.next());

  channel.stats().reset();
  Stopwatch sw;
  if (batched) {
    gateway.insert_many("obs", std::move(corpus));
  } else {
    for (auto& d : corpus) gateway.insert("obs", std::move(d));
  }
  return {sw.elapsed_ms(), channel.stats().round_trips.load()};
}

}  // namespace

int main() {
  const std::size_t docs = [] {
    const char* v = std::getenv("BATCH_DOCS");
    return v ? static_cast<std::size_t>(std::atoll(v)) : std::size_t{150};
  }();

  std::printf("== Bulk-ingest batching ablation (%zu documents, 8 tactics/doc) ==\n\n",
              docs);
  std::printf("%-12s %-10s %12s %12s %14s\n", "mode", "delay", "total/ms", "ms/doc",
              "round trips");
  for (const std::uint64_t latency_us : {0ULL, 200ULL, 1000ULL}) {
    for (const bool batched : {false, true}) {
      const Row r = run(batched, latency_us, docs);
      std::printf("%-12s %6llu us %12.1f %12.2f %14llu\n",
                  batched ? "insert_many" : "insert x N",
                  static_cast<unsigned long long>(latency_us), r.total_ms,
                  r.total_ms / static_cast<double>(docs),
                  static_cast<unsigned long long>(r.round_trips));
    }
  }
  std::printf(
      "\nUnbatched ingest pays ~9 round trips per document (blob + 8 index\n"
      "updates); insert_many collapses the whole corpus to one batch round\n"
      "trip, so its cost approaches the pure crypto time as the WAN slows.\n");
  return 0;
}
