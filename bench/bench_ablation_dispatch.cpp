// Ablation: what does the middleware layer itself cost?
//
// The 1.4% of Figure 5 decomposes into (a) schema validation, (b) policy /
// plan lookup, (c) registry-mediated virtual dispatch. This bench measures
// each component in isolation, plus end-to-end insert and equality-search
// through a DET-only schema with tactics called directly (S_B style)
// versus through the Gateway (S_C style). DET-only keeps Paillier out of
// the picture so the *dispatch* delta is visible rather than drowned.
#include <benchmark/benchmark.h>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/policy.hpp"
#include "core/tactics/builtin.hpp"
#include "core/tactics/det_tactic.hpp"
#include "doc/binary_codec.hpp"
#include "fhir/observation.hpp"

namespace {

using namespace datablinder;
using doc::Document;
using doc::Value;

core::TacticRegistry& registry() {
  static core::TacticRegistry r = [] {
    core::TacticRegistry reg;
    core::register_builtin_tactics(reg);
    return reg;
  }();
  return r;
}

schema::Schema det_only_schema() {
  schema::Schema s("abl");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kString;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass4;
  f.operations = {schema::Operation::kInsert, schema::Operation::kEquality};
  s.field("f", f);
  return s;
}

struct Rig {
  Rig() : rpc(cloud.rpc(), channel) {}
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc;
  kms::KeyManager kms;
  store::KvStore local;
};

void BM_PolicySelection(benchmark::State& state) {
  const schema::Schema s = fhir::observation_schema("obs");
  core::PolicyEngine policy(registry());
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.select(s));
  }
}
BENCHMARK(BM_PolicySelection);

void BM_SchemaValidation(benchmark::State& state) {
  const schema::Schema s = fhir::observation_schema("obs");
  fhir::ObservationGenerator gen(1);
  const Document d = gen.next();
  for (auto _ : state) {
    s.validate(d);
  }
}
BENCHMARK(BM_SchemaValidation);

void BM_RegistryInstantiation(benchmark::State& state) {
  Rig rig;
  core::GatewayContext ctx;
  ctx.cloud = &rig.rpc;
  ctx.local_store = &rig.local;
  ctx.kms = &rig.kms;
  ctx.collection = "c";
  ctx.field = "f";
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry().create_field("DET", ctx));
  }
}
BENCHMARK(BM_RegistryInstantiation);

// S_B style: concrete DetTactic driven directly — same protocol work as
// the gateway path (seal blob, doc.put, index insert), minus the
// middleware layer (validation, plan lookup, locking, metrics, virtual
// dispatch).
void BM_DirectDetInsert(benchmark::State& state) {
  Rig rig;
  core::GatewayContext ctx;
  ctx.cloud = &rig.rpc;
  ctx.local_store = &rig.local;
  ctx.kms = &rig.kms;
  ctx.collection = "abl";
  ctx.field = "f";
  core::DetTactic det(ctx);
  det.setup();
  crypto::AesGcm doc_cipher(rig.kms.derive("doc/abl", 32));
  int i = 0;
  for (auto _ : state) {
    Document d;
    d.id = "doc" + std::to_string(i++);
    d.set("f", Value("v" + std::to_string(i % 8)));
    const Bytes blob =
        doc_cipher.seal_random_nonce(doc::encode_document(d), to_bytes(d.id));
    doc::Object req;
    req["col"] = Value(std::string("abl"));
    req["id"] = Value(d.id);
    req["blob"] = Value(blob);
    rig.rpc.call("doc.put", doc::encode_value(Value(std::move(req))));
    det.on_insert(d.id, d.at("f"));
  }
}
BENCHMARK(BM_DirectDetInsert)->Unit(benchmark::kMicrosecond);

// S_C style: the same work through the full middleware.
void BM_GatewayDetInsert(benchmark::State& state) {
  Rig rig;
  core::Gateway gateway(rig.rpc, rig.kms, rig.local, registry(), {});
  gateway.register_schema(det_only_schema());
  int i = 0;
  for (auto _ : state) {
    Document d;
    d.set("f", Value("v" + std::to_string(i++ % 8)));
    benchmark::DoNotOptimize(gateway.insert("abl", std::move(d)));
  }
}
BENCHMARK(BM_GatewayDetInsert)->Unit(benchmark::kMicrosecond);

void BM_DirectDetSearch(benchmark::State& state) {
  Rig rig;
  core::GatewayContext ctx;
  ctx.cloud = &rig.rpc;
  ctx.local_store = &rig.local;
  ctx.kms = &rig.kms;
  ctx.collection = "abl";
  ctx.field = "f";
  core::DetTactic det(ctx);
  det.setup();
  crypto::AesGcm doc_cipher(rig.kms.derive("doc/abl", 32));
  for (int i = 0; i < 64; ++i) {
    Document d;
    d.id = "doc" + std::to_string(i);
    d.set("f", Value("v" + std::to_string(i % 8)));
    const Bytes blob =
        doc_cipher.seal_random_nonce(doc::encode_document(d), to_bytes(d.id));
    doc::Object req;
    req["col"] = Value(std::string("abl"));
    req["id"] = Value(d.id);
    req["blob"] = Value(blob);
    rig.rpc.call("doc.put", doc::encode_value(Value(std::move(req))));
    det.on_insert(d.id, d.at("f"));
  }
  for (auto _ : state) {
    // Same work as the gateway path: ids, then fetch + decrypt each match.
    const auto ids = det.equality_search(Value("v3"));
    for (const auto& id : ids) {
      doc::Object req;
      req["col"] = Value(std::string("abl"));
      req["id"] = Value(id);
      const Bytes reply = rig.rpc.call("doc.get", doc::encode_value(Value(std::move(req))));
      const doc::Value obj = doc::decode_value(reply);
      const Bytes& blob = obj.as_object().at("blob").as_binary();
      benchmark::DoNotOptimize(doc_cipher.open_with_nonce(blob, to_bytes(id)));
    }
  }
}
BENCHMARK(BM_DirectDetSearch)->Unit(benchmark::kMicrosecond);

void BM_GatewayDetSearch(benchmark::State& state) {
  Rig rig;
  core::Gateway gateway(rig.rpc, rig.kms, rig.local, registry(), {});
  gateway.register_schema(det_only_schema());
  for (int i = 0; i < 64; ++i) {
    Document d;
    d.set("f", Value("v" + std::to_string(i % 8)));
    gateway.insert("abl", std::move(d));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gateway.equality_search("abl", "f", Value("v3")));
  }
}
BENCHMARK(BM_GatewayDetSearch)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
