// Microbenchmarks of every cryptographic primitive and per-tactic protocol
// step (the "performance metrics" axis of the tactic abstraction model,
// Fig. 1). google-benchmark binary.
#include <benchmark/benchmark.h>

#include "bigint/bigint.hpp"
#include "bigint/montgomery.hpp"
#include "common/rng.hpp"
#include "crypto/gcm.hpp"
#include "crypto/hmac.hpp"
#include "crypto/prf.hpp"
#include "crypto/sha256.hpp"
#include "crypto/siv.hpp"
#include "phe/paillier.hpp"
#include "ppe/det.hpp"
#include "ppe/ope.hpp"
#include "ppe/ore.hpp"
#include "sse/iex2lev.hpp"
#include "sse/mitra.hpp"
#include "sse/sophos.hpp"

namespace {

using namespace datablinder;
using bigint::BigInt;

void BM_Sha256(benchmark::State& state) {
  const Bytes data = DetRng(1).bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key(32, 1);
  const Bytes data = DetRng(2).bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HmacSha256::mac(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(32)->Arg(1024);

void BM_PrfKeyHoisted(benchmark::State& state) {
  // Same MAC through a PrfKey: the key schedule and ipad/opad compressions
  // are paid once at construction instead of per call.
  const crypto::PrfKey key(Bytes(32, 1));
  const Bytes data = DetRng(2).bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.prf(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PrfKeyHoisted)->Arg(32)->Arg(1024);

void BM_AesGcmSeal(benchmark::State& state) {
  const crypto::AesGcm gcm(Bytes(32, 1));
  const Bytes nonce(12, 2);
  const Bytes data = DetRng(3).bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.seal(nonce, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesGcmSeal)->Arg(128)->Arg(1024)->Arg(8192);

void BM_AesGcmOpen(benchmark::State& state) {
  const crypto::AesGcm gcm(Bytes(32, 1));
  const Bytes nonce(12, 2);
  const Bytes sealed = gcm.seal(nonce, DetRng(4).bytes(1024));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.open(nonce, sealed));
  }
}
BENCHMARK(BM_AesGcmOpen);

void BM_AesSivSeal(benchmark::State& state) {
  const crypto::AesSiv siv(Bytes(32, 5));
  const Bytes data = DetRng(5).bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(siv.seal(data));
  }
}
BENCHMARK(BM_AesSivSeal)->Arg(16)->Arg(256);

void BM_DetEncrypt(benchmark::State& state) {
  const ppe::DetCipher det(Bytes(32, 6), "bench.field");
  const Bytes value = to_bytes("final");
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.encrypt(value));
  }
}
BENCHMARK(BM_DetEncrypt);

void BM_OpeEncrypt(benchmark::State& state) {
  const ppe::OpeCipher ope(Bytes(32, 7), "bench.field");
  std::uint64_t x = 1359966610;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ope.encrypt(x++));
  }
}
BENCHMARK(BM_OpeEncrypt);

void BM_OreEncryptRight(benchmark::State& state) {
  const ppe::OreCipher ore(Bytes(32, 8), "bench.field", 64);
  std::uint64_t x = 1359966610;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ore.encrypt_right(x++));
  }
}
BENCHMARK(BM_OreEncryptRight);

void BM_OreEncryptLeft(benchmark::State& state) {
  const ppe::OreCipher ore(Bytes(32, 8), "bench.field", 64);
  std::uint64_t x = 1359966610;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ore.encrypt_left(x++));
  }
}
BENCHMARK(BM_OreEncryptLeft);

void BM_OreCompare(benchmark::State& state) {
  const ppe::OreCipher ore(Bytes(32, 8), "bench.field", 64);
  const auto left = ore.encrypt_left(1000);
  const auto right = ore.encrypt_right(2000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ppe::OreCipher::compare(left, right));
  }
}
BENCHMARK(BM_OreCompare);

void BM_MitraUpdate(benchmark::State& state) {
  sse::MitraClient client(Bytes(32, 9));
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.update(sse::MitraOp::kAdd, "kw", "doc" + std::to_string(i++)));
  }
}
BENCHMARK(BM_MitraUpdate);

void BM_MitraSearchTokens(benchmark::State& state) {
  sse::MitraClient client(Bytes(32, 10));
  for (int i = 0; i < state.range(0); ++i) {
    client.update(sse::MitraOp::kAdd, "kw", "doc" + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.search_token("kw"));
  }
}
BENCHMARK(BM_MitraSearchTokens)->Arg(10)->Arg(100)->Arg(1000);

void BM_SophosUpdate(benchmark::State& state) {
  // One RSA private op per update — the scheme's known update cost.
  sse::SophosClient client(Bytes(32, 11), 768);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.update("kw", "doc" + std::to_string(i++)));
  }
}
BENCHMARK(BM_SophosUpdate)->Unit(benchmark::kMicrosecond);

void BM_SophosServerSearch(benchmark::State& state) {
  sse::SophosClient client(Bytes(32, 12), 768);
  sse::SophosServer server(client.public_params());
  for (int i = 0; i < state.range(0); ++i) {
    server.apply_update(client.update("kw", "doc" + std::to_string(i)));
  }
  const auto token = *client.search_token("kw");
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.search(token));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SophosServerSearch)->Arg(10)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_Iex2LevUpdate(benchmark::State& state) {
  sse::Iex2LevClient client(Bytes(32, 13));
  const std::vector<std::string> keywords = {"status:final", "code:glucose",
                                             "value:63"};
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        client.update(sse::IexOp::kAdd, keywords, "doc" + std::to_string(i++)));
  }
}
BENCHMARK(BM_Iex2LevUpdate);

void BM_PaillierKeygen(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        phe::paillier_generate(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_PaillierKeygen)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_PaillierEncrypt(benchmark::State& state) {
  const phe::PaillierKeyPair kp =
      phe::paillier_generate(static_cast<std::size_t>(state.range(0)));
  std::int64_t v = 630;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pub.encrypt_i64(v++));
  }
}
BENCHMARK(BM_PaillierEncrypt)->Arg(256)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_PaillierEncryptPooled(benchmark::State& state) {
  // Steady-state hot path with the randomizer pool attached: the r^n
  // exponentiation moves to the background worker, leaving two modmuls.
  phe::PaillierKeyPair kp =
      phe::paillier_generate(static_cast<std::size_t>(state.range(0)));
  kp.pub.init_fast_paths(/*pool_low_water=*/64);
  std::int64_t v = 630;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pub.encrypt_i64(v++));
  }
  state.counters["pool_hits"] = static_cast<double>(kp.pub.pool->hits());
  state.counters["pool_misses"] = static_cast<double>(kp.pub.pool->misses());
}
BENCHMARK(BM_PaillierEncryptPooled)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_PaillierAdd(benchmark::State& state) {
  const phe::PaillierKeyPair kp = phe::paillier_generate(512);
  const BigInt c1 = kp.pub.encrypt_i64(100);
  const BigInt c2 = kp.pub.encrypt_i64(200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pub.add(c1, c2));
  }
}
BENCHMARK(BM_PaillierAdd);

void BM_PaillierDecrypt(benchmark::State& state) {
  // CRT path (keygen retains p/q and initializes the residue system).
  const phe::PaillierKeyPair kp =
      phe::paillier_generate(static_cast<std::size_t>(state.range(0)));
  const BigInt c = kp.pub.encrypt_i64(123456);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.priv.decrypt_i64(c));
  }
}
BENCHMARK(BM_PaillierDecrypt)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_PaillierDecryptGeneric(benchmark::State& state) {
  // Reference lambda/mu exponentiation mod n^2 — the pre-CRT cost.
  const phe::PaillierKeyPair kp =
      phe::paillier_generate(static_cast<std::size_t>(state.range(0)));
  const BigInt c = kp.pub.encrypt_i64(123456);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.priv.decrypt_generic(c));
  }
}
BENCHMARK(BM_PaillierDecryptGeneric)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_BigIntModExp(benchmark::State& state) {
  // Auto-dispatch entry point (odd modulus -> transient Montgomery context).
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  BigInt m = BigInt::random_bits(bits);
  if (m.is_even()) m += BigInt(1);
  const BigInt base = BigInt::random_below(m);
  const BigInt exp = BigInt::random_bits(bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.pow_mod(exp, m));
  }
}
BENCHMARK(BM_BigIntModExp)->Arg(256)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_BigIntModExpGeneric(benchmark::State& state) {
  // Reference square-and-multiply over Knuth-D division (the before-series).
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  BigInt m = BigInt::random_bits(bits);
  if (m.is_even()) m += BigInt(1);
  const BigInt base = BigInt::random_below(m);
  const BigInt exp = BigInt::random_bits(bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.pow_mod_generic(exp, m));
  }
}
BENCHMARK(BM_BigIntModExpGeneric)->Arg(256)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_BigIntModExpMontgomery(benchmark::State& state) {
  // Caller-held context: what Paillier/Sophos/ElGamal pay per operation
  // once the per-modulus precomputation is amortized away.
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  BigInt m = BigInt::random_bits(bits);
  if (m.is_even()) m += BigInt(1);
  const bigint::Montgomery ctx(m);
  const BigInt base = BigInt::random_below(m);
  const BigInt exp = BigInt::random_bits(bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.pow_mod(exp, ctx));
  }
}
BENCHMARK(BM_BigIntModExpMontgomery)->Arg(256)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
