// bench_hedging — CI-checkable proof that hedged reads cap tail latency
// when one replica of three turns slow.
//
// Setup: a 3-replica ReplicatedCloud behind channels with a simulated
// 1 ms one-way WAN latency. After an insert phase builds per-replica
// latency history, the read phase runs twice:
//   * no-fault baseline — all replicas fast; p50/p99 recorded;
//   * degraded — the CURRENT best-scored replica (the one the router
//     would pick next) is slowed 10x, so the very next read lands on it.
//     With hedging on, the hedge fires after the p95-derived delay and a
//     fast replica answers; the failure-accrual EWMA then steers later
//     reads away from the slow node.
//
// The contrast run repeats the degraded phase with hedging OFF: its first
// read eats the full 10x round trip, which is exactly the tail the hedge
// removes (compare "max_us" in the JSON).
//
// A third phase measures S_C availability: the full-gateway benchmark
// workload (insert + equality search + periodic aggregate) against three
// replicas, healthy and then with the primary killed outright — the
// EXPERIMENTS.md "kill 1 of 3" table comes from this run.
//
// Emits BENCH_hedging.json and exits non-zero when the degraded hedged
// p99 exceeds 3x the no-fault baseline p99, when no hedge fired/won, or
// when the kill-one-replica throughput drops below 0.4x healthy.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"
#include "core/gateway.hpp"
#include "core/replication.hpp"
#include "core/tactics/builtin.hpp"
#include "fhir/observation.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

namespace {

constexpr int kDocs = 12;
constexpr int kReads = 100;
constexpr std::uint64_t kBaseLatencyUs = 1000;   // one-way, per channel
constexpr std::uint64_t kSlowLatencyUs = 10000;  // the degraded replica (10x)

core::TacticRegistry& registry() {
  static core::TacticRegistry r = [] {
    core::TacticRegistry reg;
    core::register_builtin_tactics(reg);
    return reg;
  }();
  return r;
}

struct Phase {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

Phase percentiles(std::vector<double> us) {
  std::sort(us.begin(), us.end());
  Phase p;
  p.p50_us = us[us.size() / 2];
  p.p99_us = us[(us.size() * 99) / 100 - 1];
  p.max_us = us.back();
  return p;
}

struct Run {
  Phase nofault;
  Phase degraded;
  std::uint64_t hedges_fired = 0;
  std::uint64_t hedges_won = 0;
};

Run run(bool hedged) {
  core::GatewayConfig cfg;
  cfg.tactic_params = {{"paillier_modulus_bits", "256"}};
  cfg.retry = net::RetryPolicy::standard();
  cfg.retry.jitter_seed = 99;
  cfg.replicas = 3;
  cfg.hedged_reads = hedged;

  net::ChannelConfig wan;
  wan.one_way_latency_us = kBaseLatencyUs;
  core::ReplicatedCloud rc(cfg, wan);
  kms::KeyManager kms(Bytes(32, 42));
  store::KvStore local;
  core::Gateway gw(rc.client(), kms, local, registry(), cfg);
  gw.register_schema(fhir::benchmark_schema("obs"));

  fhir::ObservationGenerator gen(31);
  std::vector<std::string> ids;
  for (int i = 0; i < kDocs; ++i) {
    Document d = gen.next();
    d.id = "doc-" + std::to_string(i);
    ids.push_back(gw.insert("obs", d));
  }

  auto read_phase = [&] {
    std::vector<double> us;
    us.reserve(kReads);
    for (int i = 0; i < kReads; ++i) {
      Stopwatch sw;
      (void)gw.read("obs", ids[static_cast<std::size_t>(i) % ids.size()]);
      us.push_back(sw.elapsed_us());
    }
    return percentiles(std::move(us));
  };

  Run out;
  out.nofault = read_phase();

  // Degrade the replica the router currently ranks best — the very next
  // read is guaranteed to land on it.
  const auto health = rc.group()->health();
  std::size_t best = 0;
  for (const auto& h : health) {
    if (!h.suspected && h.score < health[best].score) best = h.index;
  }
  net::ChannelConfig slow = wan;
  slow.one_way_latency_us = kSlowLatencyUs;
  rc.channel(best).set_config(slow);

  const std::uint64_t fired0 = gw.perf().counter("net.hedge.fired");
  const std::uint64_t won0 = gw.perf().counter("net.hedge.won");
  out.degraded = read_phase();
  out.hedges_fired = gw.perf().counter("net.hedge.fired") - fired0;
  out.hedges_won = gw.perf().counter("net.hedge.won") - won0;
  return out;
}

// S_C availability: the full-gateway §5.2 workload (insert + equality
// search + periodic aggregate over the benchmark schema) against three
// replicas, measured healthy and then with the PRIMARY killed outright —
// the worst single-replica loss, eaten by failure accrual + failover.
struct Avail {
  double healthy_ops_s = 0.0;
  double degraded_ops_s = 0.0;
  std::uint64_t failovers = 0;
};

Avail availability() {
  core::GatewayConfig cfg;
  cfg.tactic_params = {{"paillier_modulus_bits", "256"}};
  cfg.retry = net::RetryPolicy::standard();
  cfg.retry.jitter_seed = 7;
  cfg.replicas = 3;
  cfg.hedged_reads = true;

  net::ChannelConfig wan;
  wan.one_way_latency_us = 200;
  core::ReplicatedCloud rc(cfg, wan);
  kms::KeyManager kms(Bytes(32, 43));
  store::KvStore local;
  core::Gateway gw(rc.client(), kms, local, registry(), cfg);
  gw.register_schema(fhir::benchmark_schema("obs"));

  fhir::ObservationGenerator gen(32);
  int seq = 0;
  auto phase = [&](int iterations) {
    Stopwatch sw;
    std::uint64_t ops = 0;
    for (int i = 0; i < iterations; ++i) {
      Document d = gen.next();
      d.id = "av-" + std::to_string(seq++);
      d.set("subject", Value("patient-" + std::to_string(seq % 5)));
      gw.insert("obs", d);
      ++ops;
      (void)gw.equality_search("obs", "subject",
                               Value("patient-" + std::to_string(seq % 5)));
      ++ops;
      if (i % 5 == 0) {
        (void)gw.aggregate("obs", "value", schema::Aggregate::kAverage);
        ++ops;
      }
    }
    return static_cast<double>(ops) / (sw.elapsed_us() / 1e6);
  };

  Avail out;
  out.healthy_ops_s = phase(30);
  rc.channel(rc.group()->primary()).close();  // kill 1 of 3 — the primary
  out.degraded_ops_s = phase(30);
  out.failovers = gw.perf().counter("net.replica.failover");
  return out;
}

}  // namespace

int main() {
  std::printf("== Hedged reads vs a 10x-slow replica (3 replicas, %d reads/phase) ==\n\n",
              kReads);
  const Run hedged = run(true);
  const Run plain = run(false);
  const Avail avail = availability();
  const double tail_ratio = hedged.degraded.p99_us / hedged.nofault.p99_us;
  const double avail_ratio = avail.degraded_ops_s / avail.healthy_ops_s;

  std::printf("%-30s %12s %12s %12s\n", "", "p50/us", "p99/us", "max/us");
  std::printf("%-30s %12.0f %12.0f %12.0f\n", "hedged, no fault",
              hedged.nofault.p50_us, hedged.nofault.p99_us, hedged.nofault.max_us);
  std::printf("%-30s %12.0f %12.0f %12.0f\n", "hedged, 1 of 3 slow",
              hedged.degraded.p50_us, hedged.degraded.p99_us, hedged.degraded.max_us);
  std::printf("%-30s %12.0f %12.0f %12.0f\n", "unhedged, 1 of 3 slow",
              plain.degraded.p50_us, plain.degraded.p99_us, plain.degraded.max_us);
  std::printf("%-30s %12llu\n", "hedges fired",
              static_cast<unsigned long long>(hedged.hedges_fired));
  std::printf("%-30s %12llu\n", "hedges won",
              static_cast<unsigned long long>(hedged.hedges_won));
  std::printf("%-30s %11.2fx (want <= 3x)\n", "degraded p99 / no-fault p99", tail_ratio);

  std::printf("\n== S_C availability (insert + search + aggregate, kill 1 of 3) ==\n\n");
  std::printf("%-30s %12.1f ops/s\n", "all replicas healthy", avail.healthy_ops_s);
  std::printf("%-30s %12.1f ops/s\n", "primary killed mid-run", avail.degraded_ops_s);
  std::printf("%-30s %12llu\n", "failovers",
              static_cast<unsigned long long>(avail.failovers));
  std::printf("%-30s %11.2fx of healthy\n", "degraded throughput", avail_ratio);

  std::FILE* f = std::fopen("BENCH_hedging.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"replicas\": 3,\n"
                 "  \"reads_per_phase\": %d,\n"
                 "  \"base_one_way_latency_us\": %llu,\n"
                 "  \"slow_one_way_latency_us\": %llu,\n"
                 "  \"hedged_nofault_p50_us\": %.0f,\n"
                 "  \"hedged_nofault_p99_us\": %.0f,\n"
                 "  \"hedged_degraded_p50_us\": %.0f,\n"
                 "  \"hedged_degraded_p99_us\": %.0f,\n"
                 "  \"hedged_degraded_max_us\": %.0f,\n"
                 "  \"unhedged_degraded_p99_us\": %.0f,\n"
                 "  \"unhedged_degraded_max_us\": %.0f,\n"
                 "  \"hedges_fired\": %llu,\n"
                 "  \"hedges_won\": %llu,\n"
                 "  \"degraded_p99_over_nofault_p99\": %.2f,\n"
                 "  \"sc_healthy_ops_s\": %.1f,\n"
                 "  \"sc_kill_one_ops_s\": %.1f,\n"
                 "  \"sc_kill_one_over_healthy\": %.2f,\n"
                 "  \"sc_failovers\": %llu\n"
                 "}\n",
                 kReads, static_cast<unsigned long long>(kBaseLatencyUs),
                 static_cast<unsigned long long>(kSlowLatencyUs),
                 hedged.nofault.p50_us, hedged.nofault.p99_us,
                 hedged.degraded.p50_us, hedged.degraded.p99_us,
                 hedged.degraded.max_us, plain.degraded.p99_us,
                 plain.degraded.max_us,
                 static_cast<unsigned long long>(hedged.hedges_fired),
                 static_cast<unsigned long long>(hedged.hedges_won), tail_ratio,
                 avail.healthy_ops_s, avail.degraded_ops_s, avail_ratio,
                 static_cast<unsigned long long>(avail.failovers));
    std::fclose(f);
  }

  bool ok = true;
  if (tail_ratio > 3.0) {
    std::fprintf(stderr, "FAIL: degraded p99 %.0fus is %.2fx the no-fault p99 %.0fus (want <= 3x)\n",
                 hedged.degraded.p99_us, tail_ratio, hedged.nofault.p99_us);
    ok = false;
  }
  if (hedged.hedges_fired == 0 || hedged.hedges_won == 0) {
    std::fprintf(stderr, "FAIL: no hedge fired/won (fired=%llu won=%llu)\n",
                 static_cast<unsigned long long>(hedged.hedges_fired),
                 static_cast<unsigned long long>(hedged.hedges_won));
    ok = false;
  }
  if (avail.failovers == 0 || avail_ratio < 0.4) {
    std::fprintf(stderr,
                 "FAIL: S_C with 1 of 3 replicas killed ran at %.1f ops/s vs %.1f "
                 "healthy (%.2fx, want >= 0.4x with >= 1 failover, got %llu)\n",
                 avail.degraded_ops_s, avail.healthy_ops_s, avail_ratio,
                 static_cast<unsigned long long>(avail.failovers));
    ok = false;
  }
  if (ok) std::printf("\nhedged-read tail assertions OK\n");
  return ok ? 0 : 1;
}
