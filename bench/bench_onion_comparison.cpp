// Related-work comparison: CryptDB-style onion encryption vs DataBlinder's
// per-field tactic selection, on the same numeric column and query mix.
//
// What the paper argues qualitatively in §6, measured:
//  * leakage over time — the onion column's protection RATCHETS DOWN the
//    moment the first equality (then range) query arrives and stays there
//    for every row forever; DataBlinder's leakage is fixed up front by the
//    annotation and never widens at query time;
//  * the peel cost — CryptDB re-encrypts the whole column server-side per
//    level change; DataBlinder pays per-row index entries at insert time;
//  * steady-state query cost — onion equality is a column scan; the DET
//    tactic is an index lookup.
#include <cstdio>

#include "common/stopwatch.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "onion/onion.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

int main() {
  constexpr int kRows = 400;
  constexpr int kQueries = 50;

  // --- CryptDB-style onion column -----------------------------------------
  onion::OnionClient client(Bytes(32, 1), "obs.effective", /*numeric=*/true);
  onion::OnionColumnServer column("obs.effective", true);
  Stopwatch sw;
  for (int i = 0; i < kRows; ++i) {
    column.put("r" + std::to_string(i), client.encrypt(Value(std::int64_t{i * 37})));
  }
  const double onion_insert_ms = sw.elapsed_ms();
  const std::size_t onion_bytes_rnd = column.storage_bytes();

  std::printf("== Onion (CryptDB-style) column lifecycle ==\n\n");
  std::printf("%-34s level=%s  storage=%zu B\n", "after ingest:",
              to_string(column.level()).c_str(), onion_bytes_rnd);

  sw.reset();
  column.peel_to_det(client.rnd_layer_key(), "obs.effective");
  const double peel1_ms = sw.elapsed_ms();
  std::printf("%-34s level=%s  storage=%zu B  (peel cost %.1f ms, ALL %d rows "
              "leak equality from now on)\n",
              "first equality query arrives:", to_string(column.level()).c_str(),
              column.storage_bytes(), peel1_ms, kRows);

  sw.reset();
  for (int q = 0; q < kQueries; ++q) {
    column.find_eq(client.eq_token(Value(std::int64_t{(q % kRows) * 37})));
  }
  const double onion_eq_us = sw.elapsed_us() / kQueries;

  sw.reset();
  column.peel_to_ope(client.det_layer_key(), "obs.effective");
  const double peel2_ms = sw.elapsed_ms();
  std::printf("%-34s level=%s  storage=%zu B  (peel cost %.1f ms, order leaks "
              "permanently)\n",
              "first range query arrives:", to_string(column.level()).c_str(),
              column.storage_bytes(), peel2_ms);

  sw.reset();
  for (int q = 0; q < kQueries; ++q) {
    const auto [lo, hi] =
        client.range_tokens(Value(std::int64_t{q * 10}), Value(std::int64_t{q * 10 + 3000}));
    column.find_range(lo, hi);
  }
  const double onion_range_us = sw.elapsed_us() / kQueries;

  // --- DataBlinder: DET + OPE tactics selected up front --------------------
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gateway(rpc, kms, local, registry, {});

  schema::Schema s("obs");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kInt;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass5;
  f.operations = {schema::Operation::kInsert, schema::Operation::kEquality,
                  schema::Operation::kRange};
  s.field("effective", f);
  gateway.register_schema(s);

  sw.reset();
  std::vector<Document> corpus;
  for (int i = 0; i < kRows; ++i) {
    Document d;
    d.set("effective", Value(std::int64_t{i * 37}));
    corpus.push_back(std::move(d));
  }
  gateway.insert_many("obs", std::move(corpus));
  const double db_insert_ms = sw.elapsed_ms();

  sw.reset();
  for (int q = 0; q < kQueries; ++q) {
    gateway.equality_search("obs", "effective", Value(std::int64_t{(q % kRows) * 37}));
  }
  const double db_eq_us = sw.elapsed_us() / kQueries;

  sw.reset();
  for (int q = 0; q < kQueries; ++q) {
    gateway.range_search("obs", "effective", Value(std::int64_t{q * 10}),
                         Value(std::int64_t{q * 10 + 3000}));
  }
  const double db_range_us = sw.elapsed_us() / kQueries;

  std::printf("\n== Side by side (%d rows, %d queries per kind) ==\n\n", kRows, kQueries);
  std::printf("%-26s %14s %14s\n", "", "onion(CryptDB)", "DataBlinder");
  std::printf("%-26s %11.1f ms %11.1f ms\n", "ingest", onion_insert_ms, db_insert_ms);
  std::printf("%-26s %11.1f ms %14s\n", "leakage change at query", peel1_ms + peel2_ms,
              "none");
  std::printf("%-26s %11.1f us %11.1f us\n", "equality query", onion_eq_us, db_eq_us);
  std::printf("%-26s %11.1f us %11.1f us\n", "range query", onion_range_us, db_range_us);
  std::printf("%-26s %14zu %14zu\n", "cloud bytes", column.storage_bytes(),
              cloud.storage_bytes());
  std::printf(
      "\nThe onion column ends at OPE level for every row — equality tokens no\n"
      "longer even apply (single-onion model) and order leaks globally.\n"
      "DataBlinder pays more storage (parallel DET + OPE indexes + AEAD blobs)\n"
      "but its leakage was chosen per field at schema time and never widened.\n");
  return 0;
}
