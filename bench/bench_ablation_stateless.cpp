// Ablation: the price of statelessness.
//
// The paper's conclusion flags gateway state as the obstacle to
// cloud-native deployment and calls for "efficient stateless SE schemes".
// This bench compares plain Mitra (gateway-held counters) with our
// Mitra-SL variant (counters outsourced encrypted) along the axes the
// trade-off actually moves: per-operation latency, protocol round trips,
// and cloud-side storage — at several simulated WAN delays, because the
// extra counter round trip is exactly a WAN-latency multiplier.
#include <cstdio>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "core/tactics/mitra_stateless_tactic.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

namespace {

core::TacticRegistry make_registry(bool stateless) {
  core::TacticRegistry r;
  core::register_det_tactic(r);
  core::register_rnd_tactic(r);
  core::register_mitra_tactic(r);
  {
    core::TacticDescriptor d = core::MitraStatelessTactic::static_descriptor();
    if (stateless) d.preference = 100;
    r.register_field_tactic(std::move(d), [](const core::GatewayContext& ctx) {
      return std::make_unique<core::MitraStatelessTactic>(ctx);
    });
  }
  core::register_sophos_tactic(r);
  core::register_biex2lev_tactic(r);
  core::register_biexzmf_tactic(r);
  core::register_ope_tactic(r);
  core::register_ore_tactic(r);
  core::register_paillier_tactic(r);
  return r;
}

schema::Schema name_schema() {
  schema::Schema s("people");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kString;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass2;
  f.operations = {schema::Operation::kInsert, schema::Operation::kEquality};
  s.field("name", f);
  return s;
}

struct Row {
  double insert_us, search_us;
  std::uint64_t round_trips;
  std::size_t cloud_bytes;
};

Row run(bool stateless, std::uint64_t latency_us, int docs = 150, int searches = 40) {
  core::CloudNode cloud;
  net::ChannelConfig cfg;
  cfg.one_way_latency_us = latency_us;
  net::Channel channel(cfg);
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  const core::TacticRegistry registry = make_registry(stateless);
  core::Gateway gw(rpc, kms, local, registry, {});
  gw.register_schema(name_schema());

  DetRng rng(3);
  Row row{};
  Stopwatch sw;
  for (int i = 0; i < docs; ++i) {
    Document d;
    d.set("name", Value("p" + std::to_string(rng.uniform(10))));
    gw.insert("people", d);
  }
  row.insert_us = sw.elapsed_us() / docs;

  sw.reset();
  for (int i = 0; i < searches; ++i) {
    gw.equality_search("people", "name", Value("p" + std::to_string(rng.uniform(10))));
  }
  row.search_us = sw.elapsed_us() / searches;
  row.round_trips = channel.stats().round_trips.load();
  row.cloud_bytes = cloud.storage_bytes();
  return row;
}

}  // namespace

int main() {
  std::printf("== Stateless-gateway ablation: Mitra vs Mitra-SL ==\n\n");
  std::printf("%-10s %-10s %12s %12s %12s %12s\n", "variant", "delay", "insert/us",
              "search/us", "round trips", "cloud bytes");
  for (const std::uint64_t latency_us : {0ULL, 200ULL, 1000ULL}) {
    for (const bool stateless : {false, true}) {
      const Row r = run(stateless, latency_us);
      std::printf("%-10s %6llu us %12.1f %12.1f %12llu %12zu\n",
                  stateless ? "Mitra-SL" : "Mitra",
                  static_cast<unsigned long long>(latency_us), r.insert_us, r.search_us,
                  static_cast<unsigned long long>(r.round_trips), r.cloud_bytes);
    }
  }
  std::printf(
      "\nMitra-SL pays one extra round trip per update/search (the encrypted\n"
      "counter fetch) and slightly more cloud storage (the counter slots);\n"
      "in exchange the gateway holds zero state — any replica, or a rebooted\n"
      "gateway, continues seamlessly (see tests/stateless_test.cpp).\n");
  return 0;
}
