// §5.2 latency table reproduction — overall average latency and the
// 50th/75th/99th percentile latency for S_A / S_B / S_C under the balanced
// read/write/aggregate workload.
//
// The paper observes that "the execution of aggregate protocols, namely
// the Paillier PHE, had a considerable impact on these numbers" — the
// per-operation breakdown printed below makes that attribution visible.
//
// Environment knobs: LAT_REQUESTS (default 1500), LAT_USERS (12),
// LAT_PRELOAD (250).
#include <cstdio>
#include <cstdlib>

#include "core/tactics/builtin.hpp"
#include "workload/loadgen.hpp"
#include "workload/scenarios.hpp"

using namespace datablinder;
using namespace datablinder::workload;

namespace {
std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v ? static_cast<std::size_t>(std::atoll(v)) : fallback;
}

void print_latency_row(const char* label, const LatencySummary& s) {
  std::printf("%-18s %10.2f %10.2f %10.2f %10.2f\n", label, s.mean_us / 1e3,
              s.p50_us / 1e3, s.p75_us / 1e3, s.p99_us / 1e3);
}
}  // namespace

int main() {
  LoadConfig cfg;
  cfg.total_requests = env_or("LAT_REQUESTS", 1500);
  cfg.users = env_or("LAT_USERS", 12);
  cfg.preload_documents = env_or("LAT_PRELOAD", 250);

  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);

  std::printf("== Latency table (§5.2): ms per request, %zu requests, %zu users ==\n\n",
              cfg.total_requests, cfg.users);

  RunResult results[3];
  {
    ScenarioHarness h;
    ScenarioA s(h);
    results[0] = run_load(s, cfg);
  }
  {
    ScenarioHarness h;
    ScenarioB s(h);
    results[1] = run_load(s, cfg);
  }
  {
    ScenarioHarness h;
    ScenarioC s(h, registry);
    results[2] = run_load(s, cfg);
  }

  std::printf("%-18s %10s %10s %10s %10s\n", "scenario (overall)", "avg/ms", "p50/ms",
              "p75/ms", "p99/ms");
  for (const auto& r : results) print_latency_row(r.scenario.c_str(), r.overall_latency);

  std::printf("\nper-operation breakdown (S_C):\n");
  std::printf("%-18s %10s %10s %10s %10s\n", "operation", "avg/ms", "p50/ms", "p75/ms",
              "p99/ms");
  print_latency_row("write", results[2].write.latency);
  print_latency_row("read", results[2].read.latency);
  print_latency_row("aggregate", results[2].aggregate.latency);
  std::printf(
      "\nThe aggregate row carries the Paillier protocol cost — the paper's\n"
      "observation that PHE execution dominates the tail latencies.\n");
  return 0;
}
