// Ablation: sensitivity of each tactic protocol to the gateway-cloud
// network (the paper deploys the two halves on separate clouds; our
// simulated channel lets us sweep the WAN latency).
//
// SSE tactics are "inherently distributed" (§4): every operation pays at
// least one round trip, and search operations that fetch K documents pay
// K additional retrieval round trips — latency sensitivity differs
// markedly per tactic, which is exactly what this table shows.
//
// Environment knob: NETAB_OPS (default 60) operations per cell.
#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "fhir/observation.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

namespace {

std::size_t env_or(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v ? static_cast<std::size_t>(std::atoll(v)) : fallback;
}

struct CellResult {
  double insert_ms, eq_ms, bool_ms, range_ms, avg_ms;
};

CellResult run_cell(std::uint64_t latency_us, std::size_t ops) {
  core::CloudNode cloud;
  net::ChannelConfig cfg;
  cfg.one_way_latency_us = latency_us;
  net::Channel channel(cfg);
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gateway(rpc, kms, local, registry,
                        core::GatewayConfig{{{"paillier_modulus_bits", "384"}}});
  gateway.register_schema(fhir::observation_schema("obs"));

  fhir::ObservationGenerator gen(11);
  // Preload outside the timed sections.
  for (std::size_t i = 0; i < 120; ++i) gateway.insert("obs", gen.next());

  CellResult r{};
  Stopwatch sw;
  for (std::size_t i = 0; i < ops; ++i) gateway.insert("obs", gen.next());
  r.insert_ms = sw.elapsed_ms() / static_cast<double>(ops);

  sw.reset();
  for (std::size_t i = 0; i < ops; ++i) {
    gateway.equality_search("obs", "subject", gen.random_subject());
  }
  r.eq_ms = sw.elapsed_ms() / static_cast<double>(ops);

  sw.reset();
  for (std::size_t i = 0; i < ops; ++i) {
    core::FieldBoolQuery q;
    q.dnf.push_back({{"status", gen.random_status()}, {"code", gen.random_code()}});
    gateway.boolean_search("obs", q);
  }
  r.bool_ms = sw.elapsed_ms() / static_cast<double>(ops);

  sw.reset();
  for (std::size_t i = 0; i < ops; ++i) {
    const auto [lo, hi] = gen.random_effective_range();
    gateway.range_search("obs", "effective", lo, hi);
  }
  r.range_ms = sw.elapsed_ms() / static_cast<double>(ops);

  sw.reset();
  for (std::size_t i = 0; i < ops; ++i) {
    gateway.aggregate("obs", "value", schema::Aggregate::kAverage);
  }
  r.avg_ms = sw.elapsed_ms() / static_cast<double>(ops);
  return r;
}

}  // namespace

int main() {
  const std::size_t ops = env_or("NETAB_OPS", 60);
  std::printf("== Network ablation: mean latency per gateway operation (ms), "
              "%zu ops/cell ==\n\n",
              ops);
  std::printf("%-14s %10s %10s %10s %10s %10s\n", "one-way delay", "insert", "eq(Mitra)",
              "bool(BIEX)", "range(OPE)", "avg(Paillier)");
  for (const std::uint64_t latency_us : {0ULL, 100ULL, 500ULL, 2000ULL}) {
    const CellResult r = run_cell(latency_us, ops);
    std::printf("%8llu us    %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                static_cast<unsigned long long>(latency_us), r.insert_ms, r.eq_ms,
                r.bool_ms, r.range_ms, r.avg_ms);
  }
  std::printf(
      "\nInsert fans out to one RPC per tactic index; searches pay one query\n"
      "round trip plus one retrieval round trip per matching document — the\n"
      "slope over the delay column exposes each protocol's round-trip count.\n");
  return 0;
}
