// Ablation: the three range tactics — OPE, ORE, RangeBRC — across the
// security/performance/functionality triangle the paper's abstraction
// model is built on.
//
//   OPE      — Class 5, ordered cloud index, O(log N + K) scans: cheapest,
//              leaks total order of everything at rest;
//   ORE      — Class 5, mutually incomparable resting ciphertexts, O(N)
//              token comparisons per query: protects the snapshot, costly;
//   RangeBRC — Class 3 (extension), dyadic SSE: no order leakage at all,
//              64x storage amplification and O(log D) searches.
//
// One table, all three axes: insert cost, query cost, cloud storage, and
// the protection class each buys.
#include <cstdio>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "core/tactics/ore_tactic.hpp"
#include "core/tactics/rangebrc_tactic.hpp"

using namespace datablinder;
using doc::Document;
using doc::Value;

namespace {

core::TacticRegistry make_registry(const std::string& promoted) {
  core::TacticRegistry r;
  core::register_det_tactic(r);
  core::register_rnd_tactic(r);
  core::register_mitra_tactic(r);
  core::register_sophos_tactic(r);
  core::register_biex2lev_tactic(r);
  core::register_biexzmf_tactic(r);
  if (promoted == "ORE") {
    core::TacticDescriptor d = core::OreTactic::static_descriptor();
    d.preference = 100;
    r.register_field_tactic(std::move(d), [](const core::GatewayContext& ctx) {
      return std::make_unique<core::OreTactic>(ctx);
    });
  } else {
    core::register_ore_tactic(r);
  }
  if (promoted == "RangeBRC") {
    core::TacticDescriptor d = core::RangeBrcTactic::static_descriptor();
    d.preference = 100;
    d.protection_class = schema::ProtectionClass::kClass5;  // admissible at C5
    r.register_field_tactic(std::move(d), [](const core::GatewayContext& ctx) {
      return std::make_unique<core::RangeBrcTactic>(ctx);
    });
  } else {
    core::register_rangebrc_tactic(r);
  }
  core::register_ope_tactic(r);
  core::register_paillier_tactic(r);
  return r;
}

struct Row {
  double insert_us, query_us;
  std::size_t cloud_bytes;
};

Row run(const std::string& tactic, bool adaptive = false, int docs = 250,
        int queries = 30) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  const core::TacticRegistry registry = make_registry(tactic);
  core::GatewayConfig cfg;
  if (adaptive) {
    cfg.adaptive_selection = true;
    cfg.hot_cache_capacity = 1024;
  }
  core::Gateway gw(rpc, kms, local, registry, cfg);

  schema::Schema s("ts_col");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kInt;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass5;
  f.operations = {schema::Operation::kInsert, schema::Operation::kRange};
  s.field("ts", f);
  gw.register_schema(s);
  if (gw.plan("ts_col").fields.at("ts").range_tactic != tactic) {
    std::fprintf(stderr, "unexpected selection for %s\n", tactic.c_str());
    std::exit(1);
  }

  DetRng rng(17);
  Row row{};
  Stopwatch sw;
  for (int i = 0; i < docs; ++i) {
    Document d;
    d.set("ts", Value(rng.range(0, 1000000)));
    gw.insert("ts_col", d);
  }
  row.insert_us = sw.elapsed_us() / docs;

  sw.reset();
  for (int q = 0; q < queries; ++q) {
    const std::int64_t lo = rng.range(0, 900000);
    gw.range_search("ts_col", "ts", Value(lo), Value(lo + 100000));
  }
  row.query_us = sw.elapsed_us() / queries;
  row.cloud_bytes = cloud.storage_bytes();
  return row;
}

}  // namespace

int main() {
  std::printf("== Range tactic ablation (250 docs, 30 range queries, ~10%% selectivity) ==\n\n");
  std::printf("%-10s %-8s %-22s %12s %12s %12s\n", "tactic", "class", "resting leakage",
              "insert/us", "query/us", "cloud bytes");
  struct Meta {
    const char* name;
    const char* cls;
    const char* leak;
  };
  for (const Meta m : {Meta{"OPE", "5", "total order"},
                       Meta{"ORE", "5", "none (tokens reveal)"},
                       Meta{"RangeBRC", "3", "none (interval access)"}}) {
    const Row r = run(m.name);
    std::printf("%-10s %-8s %-22s %12.1f %12.1f %12zu\n", m.name, m.cls, m.leak,
                r.insert_us, r.query_us, r.cloud_bytes);
  }
  // Fourth row: the static table is pinned to ORE (the costly choice for
  // this workload) but adaptive selection + the hot cache are on — the
  // cost model walks the plan back to the cheapest admissible candidate.
  const Row a = run("ORE", /*adaptive=*/true);
  std::printf("%-10s %-8s %-22s %12.1f %12.1f %12zu\n", "ORE+adapt", "5",
              "as chosen tactic", a.insert_us, a.query_us, a.cloud_bytes);
  std::printf(
      "\nThe triangle, measured: OPE is cheapest and leakiest; ORE protects the\n"
      "snapshot but pays linear comparison scans; RangeBRC removes order\n"
      "leakage entirely for 64x index amplification — and is the only option\n"
      "the policy engine can offer a field whose class bound excludes order.\n"
      "The adaptive row starts from the worst static choice and converges to\n"
      "the cheapest admissible candidate (see bench_adaptive for the CI-\n"
      "asserted convergence + cache-hit numbers).\n");
  return 0;
}
