// RangeBRC tests: dyadic interval algebra, best-range-cover exactness,
// scheme-level search correctness, and end-to-end gateway behaviour
// (including the policy gap it fills: range queries below Class 5).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "sse/range_brc.hpp"

namespace datablinder {
namespace {

using doc::Document;
using doc::Value;
using sse::best_range_cover;
using sse::DyadicInterval;
using sse::dyadic_path;

TEST(DyadicTest, PathContainsValueAtEveryLevel) {
  const std::uint64_t x = 0xdeadbeefcafef00dULL;
  const auto path = dyadic_path(x);
  ASSERT_EQ(path.size(), 64u);
  for (const auto& node : path) {
    EXPECT_LE(node.lo(), x);
    EXPECT_GE(node.hi(), x);
  }
  EXPECT_EQ(path[0].lo(), x);  // level 0 is the point itself
  EXPECT_EQ(path[0].hi(), x);
}

TEST(DyadicTest, KeywordsAreCollisionFreeAcrossLevels) {
  // prefix 5 at level 3 must differ from prefix 5 at level 4.
  EXPECT_NE((DyadicInterval{3, 5}).keyword("s"), (DyadicInterval{4, 5}).keyword("s"));
  EXPECT_NE((DyadicInterval{3, 5}).keyword("a"), (DyadicInterval{3, 5}).keyword("b"));
}

TEST(BestRangeCoverTest, ExactTilingOnKnownRanges) {
  struct Case {
    std::uint64_t lo, hi;
  };
  const Case cases[] = {
      {0, 0},   {5, 5},        {0, 7},          {1, 6},
      {3, 17},  {0, UINT64_MAX}, {UINT64_MAX, UINT64_MAX},
      {1, UINT64_MAX},          {0, UINT64_MAX - 1},
  };
  for (const auto& c : cases) {
    const auto cover = best_range_cover(c.lo, c.hi);
    // Exactness: contiguous, disjoint, spanning precisely [lo, hi].
    ASSERT_FALSE(cover.empty());
    EXPECT_EQ(cover.front().lo(), c.lo);
    EXPECT_EQ(cover.back().hi(), c.hi);
    for (std::size_t i = 0; i + 1 < cover.size(); ++i) {
      EXPECT_EQ(cover[i].hi() + 1, cover[i + 1].lo());
    }
    // Best-range-cover bound: at most 2 nodes per level => <= 128.
    EXPECT_LE(cover.size(), 128u);
  }
}

TEST(BestRangeCoverTest, RandomizedExactness) {
  DetRng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    std::uint64_t a = rng.engine()();
    std::uint64_t b = rng.engine()();
    if (a > b) std::swap(a, b);
    const auto cover = best_range_cover(a, b);
    EXPECT_EQ(cover.front().lo(), a);
    EXPECT_EQ(cover.back().hi(), b);
    for (std::size_t i = 0; i + 1 < cover.size(); ++i) {
      EXPECT_EQ(cover[i].hi() + 1, cover[i + 1].lo()) << trial;
    }
    EXPECT_LE(cover.size(), 128u);
  }
}

TEST(BestRangeCoverTest, SmallDomainEnumeration) {
  // Exhaustive over an 6-bit sub-domain: membership via the cover equals
  // plain interval membership for every (lo, hi, x).
  for (std::uint64_t lo = 0; lo < 64; lo += 7) {
    for (std::uint64_t hi = lo; hi < 64; hi += 5) {
      const auto cover = best_range_cover(lo, hi);
      for (std::uint64_t x = 0; x < 64; ++x) {
        bool in_cover = false;
        for (const auto& node : cover) {
          if (x >= node.lo() && x <= node.hi()) {
            in_cover = true;
            break;
          }
        }
        EXPECT_EQ(in_cover, x >= lo && x <= hi) << lo << " " << hi << " " << x;
      }
    }
  }
}

TEST(BestRangeCoverTest, RejectsInvertedRange) {
  EXPECT_THROW(best_range_cover(5, 4), Error);
}

TEST(RangeBrcSchemeTest, SearchMatchesReference) {
  sse::RangeBrcClient client(Bytes(32, 1), "obs.effective");
  sse::MitraServer server;
  DetRng rng(7);
  std::vector<std::pair<std::string, std::uint64_t>> reference;
  for (int i = 0; i < 80; ++i) {
    const std::uint64_t x = rng.uniform(100000);
    const std::string id = "doc" + std::to_string(i);
    for (const auto& token : client.update(sse::MitraOp::kAdd, x, id)) {
      server.apply_update(token);
    }
    reference.emplace_back(id, x);
  }
  for (int trial = 0; trial < 25; ++trial) {
    std::uint64_t lo = rng.uniform(100000);
    std::uint64_t hi = rng.uniform(100000);
    if (lo > hi) std::swap(lo, hi);
    std::set<std::string> expected;
    for (const auto& [id, x] : reference) {
      if (x >= lo && x <= hi) expected.insert(id);
    }
    std::set<std::string> actual;
    const auto query = client.range_query(lo, hi);
    for (std::size_t i = 0; i < query.tokens.size(); ++i) {
      for (auto& id :
           client.resolve(query.keywords[i], server.search(query.tokens[i]))) {
        actual.insert(std::move(id));
      }
    }
    EXPECT_EQ(actual, expected) << "[" << lo << "," << hi << "]";
  }
}

TEST(RangeBrcSchemeTest, DeletionsFoldAcrossAllLevels) {
  sse::RangeBrcClient client(Bytes(32, 2), "s");
  sse::MitraServer server;
  for (const auto& t : client.update(sse::MitraOp::kAdd, 500, "a")) server.apply_update(t);
  for (const auto& t : client.update(sse::MitraOp::kAdd, 600, "b")) server.apply_update(t);
  for (const auto& t : client.update(sse::MitraOp::kDelete, 500, "a")) {
    server.apply_update(t);
  }
  const auto query = client.range_query(0, 1000);
  std::set<std::string> actual;
  for (std::size_t i = 0; i < query.tokens.size(); ++i) {
    for (auto& id : client.resolve(query.keywords[i], server.search(query.tokens[i]))) {
      actual.insert(std::move(id));
    }
  }
  EXPECT_EQ(actual, (std::set<std::string>{"b"}));
}

// --- middleware level ------------------------------------------------------------

TEST(RangeBrcGatewayTest, Class3RangeQueriesWork) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gw(rpc, kms, local, registry, {});

  schema::Schema s("vitals");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kInt;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass3;  // forbids OPE/ORE
  f.operations = {schema::Operation::kInsert, schema::Operation::kRange};
  s.field("bpm", f);
  gw.register_schema(s);
  ASSERT_EQ(gw.plan("vitals").fields.at("bpm").range_tactic, "RangeBRC");

  for (std::int64_t bpm : {55, 72, 98, 140, -10}) {  // negatives via ordered_key
    Document d;
    d.set("bpm", Value(bpm));
    gw.insert("vitals", d);
  }
  EXPECT_EQ(gw.range_search("vitals", "bpm", Value(std::int64_t{60}),
                            Value(std::int64_t{100}))
                .size(),
            2u);
  EXPECT_EQ(gw.range_search("vitals", "bpm", Value(std::int64_t{-20}),
                            Value(std::int64_t{60}))
                .size(),
            2u);  // -10 and 55

  // Delete removes from every dyadic level.
  const auto hits = gw.range_search("vitals", "bpm", Value(std::int64_t{140}),
                                    Value(std::int64_t{140}));
  ASSERT_EQ(hits.size(), 1u);
  gw.remove("vitals", hits[0].id);
  EXPECT_TRUE(gw.range_search("vitals", "bpm", Value(std::int64_t{100}),
                              Value(std::int64_t{200}))
                  .empty());
}

TEST(RangeBrcGatewayTest, Class5StillPrefersOpe) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gw(rpc, kms, local, registry, {});

  schema::Schema s("logs");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kInt;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass5;  // order leakage admissible
  f.operations = {schema::Operation::kInsert, schema::Operation::kRange};
  s.field("ts", f);
  gw.register_schema(s);
  // Least protective admissible wins: OPE (cheaper) over RangeBRC.
  EXPECT_EQ(gw.plan("logs").fields.at("ts").range_tactic, "OPE");
}

TEST(RangeBrcGatewayTest, CountersPersistAcrossRestart) {
  const std::string aof = "/tmp/datablinder_brc_recovery.aof";
  std::remove(aof.c_str());
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  const Bytes master(32, 3);
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);

  schema::Schema s("vitals");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kInt;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass3;
  f.operations = {schema::Operation::kInsert, schema::Operation::kRange};
  s.field("bpm", f);

  {
    kms::KeyManager kms(master);
    store::KvStore local(aof);
    core::Gateway gw(rpc, kms, local, registry, {});
    gw.register_schema(s);
    Document d;
    d.set("bpm", Value(std::int64_t{77}));
    gw.insert("vitals", d);
  }
  kms::KeyManager kms(master);
  store::KvStore local(aof);
  core::Gateway gw(rpc, kms, local, registry, {});
  gw.register_schema(s);
  EXPECT_EQ(gw.range_search("vitals", "bpm", Value(std::int64_t{70}),
                            Value(std::int64_t{80}))
                .size(),
            1u);
  std::remove(aof.c_str());
}

}  // namespace
}  // namespace datablinder
