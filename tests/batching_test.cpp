// Deferred RPC batching tests: wire-level semantics, error propagation,
// thread isolation, and end-to-end insert_many correctness (including the
// Mitra-SL exclusion rule).
#include <gtest/gtest.h>

#include <thread>

#include "common/status.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "core/tactics/mitra_stateless_tactic.hpp"
#include "fhir/observation.hpp"
#include "net/rpc.hpp"

namespace datablinder {
namespace {

using core::DocId;
using doc::Document;
using doc::Value;

TEST(RpcBatchingTest, DeferredCallsTravelAsOneRoundTrip) {
  net::RpcServer server;
  int hits = 0;
  server.register_method("upd", [&hits](BytesView) {
    ++hits;
    return Bytes{8, 0, 0, 0, 0};  // empty object
  });
  server.register_method("rpc.batch", net::RpcClient::make_batch_handler(server));

  net::Channel channel;
  net::RpcClient client(server, channel);

  client.begin_deferred({"upd"});
  EXPECT_TRUE(client.in_deferred_section());
  for (int i = 0; i < 10; ++i) client.call("upd", Bytes{1});
  EXPECT_EQ(hits, 0);  // nothing sent yet
  EXPECT_EQ(channel.stats().round_trips.load(), 0u);
  EXPECT_EQ(client.flush_deferred(), 10u);
  EXPECT_FALSE(client.in_deferred_section());
  EXPECT_EQ(hits, 10);
  EXPECT_EQ(channel.stats().round_trips.load(), 1u);
}

TEST(RpcBatchingTest, NonDeferrableMethodsPassThrough) {
  net::RpcServer server;
  server.register_method("read", [](BytesView) { return Bytes{42}; });
  server.register_method("rpc.batch", net::RpcClient::make_batch_handler(server));
  net::Channel channel;
  net::RpcClient client(server, channel);

  client.begin_deferred({"upd"});
  EXPECT_EQ(client.call("read", {}), Bytes{42});  // immediate, not queued
  EXPECT_EQ(channel.stats().round_trips.load(), 1u);
  EXPECT_EQ(client.flush_deferred(), 0u);
}

TEST(RpcBatchingTest, SubCallErrorSurfacesAtFlush) {
  net::RpcServer server;
  int calls = 0;
  server.register_method("upd", [&calls](BytesView p) -> Bytes {
    ++calls;
    if (!p.empty() && p[0] == 0xff) {
      throw_error(ErrorCode::kSchemaViolation, "poison update");
    }
    return Bytes{8, 0, 0, 0, 0};
  });
  server.register_method("rpc.batch", net::RpcClient::make_batch_handler(server));
  net::Channel channel;
  net::RpcClient client(server, channel);

  client.begin_deferred({"upd"});
  client.call("upd", Bytes{1});
  client.call("upd", Bytes{0xff});
  client.call("upd", Bytes{2});
  try {
    client.flush_deferred();
    FAIL() << "expected schema violation";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSchemaViolation);
  }
  EXPECT_EQ(calls, 3);  // batch executes fully; the error is reported
  EXPECT_FALSE(client.in_deferred_section());
}

TEST(RpcBatchingTest, SectionsAreThreadLocal) {
  net::RpcServer server;
  std::atomic<int> hits{0};
  server.register_method("upd", [&hits](BytesView) {
    ++hits;
    return Bytes{8, 0, 0, 0, 0};
  });
  server.register_method("rpc.batch", net::RpcClient::make_batch_handler(server));
  net::Channel channel;
  net::RpcClient client(server, channel);

  client.begin_deferred({"upd"});
  client.call("upd", {});
  // Another thread's call must NOT be captured by this thread's section.
  std::thread other([&] {
    EXPECT_FALSE(client.in_deferred_section());
    client.call("upd", {});
  });
  other.join();
  EXPECT_EQ(hits.load(), 1);  // the other thread's call went through live
  EXPECT_EQ(client.flush_deferred(), 1u);
  EXPECT_EQ(hits.load(), 2);
}

TEST(RpcBatchingTest, NestedAndDanglingSectionsRejected) {
  net::RpcServer server;
  server.register_method("rpc.batch", net::RpcClient::make_batch_handler(server));
  net::Channel channel;
  net::RpcClient client(server, channel);

  EXPECT_THROW(client.flush_deferred(), Error);  // no section
  client.begin_deferred({});
  EXPECT_THROW(client.begin_deferred({}), Error);  // nested
  client.abandon_deferred();
  EXPECT_FALSE(client.in_deferred_section());
}

// --- end-to-end ------------------------------------------------------------

struct Rig {
  Rig() : rpc(cloud.rpc(), channel) {}
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc;
  kms::KeyManager kms;
  store::KvStore local;
};

TEST(InsertManyTest, BatchedCorpusIsFullySearchable) {
  Rig rig;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gw(rig.rpc, rig.kms, rig.local, registry,
                   core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gw.register_schema(fhir::benchmark_schema("obs"));

  fhir::ObservationGenerator gen(21);
  std::vector<Document> corpus;
  for (int i = 0; i < 30; ++i) {
    Document d = gen.next();
    d.set("subject", Value(i % 2 ? "even-ward" : "odd-ward"));
    corpus.push_back(std::move(d));
  }

  const std::uint64_t before = rig.channel.stats().round_trips.load();
  const auto ids = gw.insert_many("obs", std::move(corpus));
  const std::uint64_t used = rig.channel.stats().round_trips.load() - before;
  EXPECT_EQ(ids.size(), 30u);
  EXPECT_EQ(used, 1u);  // everything deferrable in one round trip

  // Every index works exactly as with per-document inserts.
  EXPECT_EQ(gw.equality_search("obs", "subject", Value("even-ward")).size(), 15u);
  EXPECT_EQ(gw.equality_search("obs", "subject", Value("odd-ward")).size(), 15u);
  EXPECT_EQ(gw.read("obs", ids[0]).has("value"), true);
  EXPECT_EQ(gw.aggregate("obs", "value", schema::Aggregate::kAverage).count, 30u);
}

TEST(InsertManyTest, ValidationFailureShipsNothing) {
  Rig rig;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gw(rig.rpc, rig.kms, rig.local, registry,
                   core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gw.register_schema(fhir::benchmark_schema("obs"));

  fhir::ObservationGenerator gen(22);
  std::vector<Document> corpus = {gen.next(), gen.next()};
  corpus[1].set("bogus_field", Value(1));  // schema violation

  const std::uint64_t before = rig.channel.stats().round_trips.load();
  EXPECT_THROW(gw.insert_many("obs", std::move(corpus)), Error);
  // Validation happens before any network activity: atomically nothing
  // reached the cloud.
  EXPECT_EQ(rig.channel.stats().round_trips.load(), before);
  // The client's deferred section was cleaned up on the error path.
  EXPECT_FALSE(rig.rpc.in_deferred_section());
}

TEST(InsertManyTest, MitraSlKeepsPerUpdateRoundTrips) {
  // The counter-read dependency of Mitra-SL must bypass deferral — same-
  // keyword updates in one batch still land on distinct counter slots.
  Rig rig;
  core::TacticRegistry registry;
  core::register_det_tactic(registry);
  core::register_rnd_tactic(registry);
  core::register_mitra_tactic(registry);
  {
    core::TacticDescriptor d = core::MitraStatelessTactic::static_descriptor();
    d.preference = 100;
    registry.register_field_tactic(std::move(d), [](const core::GatewayContext& ctx) {
      return std::make_unique<core::MitraStatelessTactic>(ctx);
    });
  }
  core::register_sophos_tactic(registry);
  core::register_biex2lev_tactic(registry);
  core::register_biexzmf_tactic(registry);
  core::register_ope_tactic(registry);
  core::register_ore_tactic(registry);
  core::register_paillier_tactic(registry);

  schema::Schema s("people");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kString;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass2;
  f.operations = {schema::Operation::kInsert, schema::Operation::kEquality};
  s.field("name", f);

  core::Gateway gw(rig.rpc, rig.kms, rig.local, registry, {});
  gw.register_schema(s);
  ASSERT_EQ(gw.plan("people").fields.at("name").eq_tactic, "Mitra-SL");

  std::vector<Document> corpus;
  for (int i = 0; i < 8; ++i) {
    Document d;
    d.set("name", Value("same-keyword"));  // all hit one counter chain
    corpus.push_back(std::move(d));
  }
  gw.insert_many("people", std::move(corpus));
  EXPECT_EQ(gw.equality_search("people", "name", Value("same-keyword")).size(), 8u);
}

}  // namespace
}  // namespace datablinder
