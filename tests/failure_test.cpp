// Failure-injection tests: channel outages and faults, malformed
// ciphertexts, KMS rotation hazards, append-only violations, schema and
// policy failures — the middleware must fail loudly and typed, never
// corrupt state silently.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "core/tactics/sophos_tactic.hpp"
#include "core/wire.hpp"
#include "fhir/observation.hpp"

namespace datablinder::core {
namespace {

using doc::Document;
using doc::Value;

TacticRegistry& registry() {
  static TacticRegistry r = [] {
    TacticRegistry reg;
    register_builtin_tactics(reg);
    return reg;
  }();
  return r;
}

struct Rig {
  Rig()
      : rpc(cloud.rpc(), channel),
        gateway(rpc, kms, local, registry(),
                GatewayConfig{{{"paillier_modulus_bits", "256"},
                               {"sophos_modulus_bits", "512"}}}) {}

  Document obs(const std::string& subject, std::int64_t effective = 100) {
    fhir::ObservationGenerator gen(1);
    Document d = gen.next();
    d.set("subject", Value(subject));
    d.set("effective", Value(effective));
    d.set("issued", Value(effective + 1));
    return d;
  }

  CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc;
  kms::KeyManager kms;
  store::KvStore local;
  Gateway gateway;
};

TEST(FailureTest, ClosedChannelSurfacesAsUnavailable) {
  Rig rig;
  rig.gateway.register_schema(fhir::observation_schema("obs"));
  rig.channel.close();
  try {
    rig.gateway.insert("obs", rig.obs("X"));
    FAIL() << "expected unavailable";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
  }
  // Reopening restores service.
  rig.channel.reopen();
  EXPECT_NO_THROW(rig.gateway.insert("obs", rig.obs("X")));
}

TEST(FailureTest, GatewayRecoversAfterTransientFaults) {
  Rig rig;
  rig.gateway.register_schema(fhir::observation_schema("obs"));

  // An insert fans out to ~9 RPCs (doc.put + 8 tactic updates) = ~18
  // channel transfers, so keep the per-transfer fault rate low enough that
  // some inserts survive end to end.
  net::ChannelConfig flaky;
  flaky.failure_probability = 0.02;
  rig.channel.set_config(flaky);

  int ok = 0, failed = 0;
  for (int i = 0; i < 40; ++i) {
    try {
      rig.gateway.insert("obs", rig.obs("patient" + std::to_string(i)));
      ++ok;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
      ++failed;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(failed, 0);

  // Heal the channel: every successfully inserted document is findable and
  // internally consistent afterwards.
  rig.channel.set_config({});
  for (int i = 0; i < 40; ++i) {
    const auto hits = rig.gateway.equality_search(
        "obs", "subject", Value("patient" + std::to_string(i)));
    EXPECT_LE(hits.size(), 1u);
  }
}

TEST(FailureTest, TamperedCloudBlobFailsAuthentication) {
  Rig rig;
  rig.gateway.register_schema(fhir::observation_schema("obs"));
  const DocId id = rig.gateway.insert("obs", rig.obs("victim"));

  // A malicious cloud flips a byte in the stored blob.
  const Bytes reply = rig.rpc.call(
      "doc.get", wire::pack({{"col", Value("obs")}, {"id", Value(id)}}));
  Bytes blob = wire::get_bin(wire::unpack(reply), "blob");
  blob[blob.size() / 2] ^= 1;
  rig.rpc.call("doc.put", wire::pack({{"col", Value("obs")},
                                      {"id", Value(id)},
                                      {"blob", Value(blob)}}));

  try {
    rig.gateway.read("obs", id);
    FAIL() << "expected crypto failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCryptoFailure);
  }
}

TEST(FailureTest, BlobSwapAcrossIdsDetected) {
  // AEAD binds blob to id: the cloud cannot serve doc A under id B.
  Rig rig;
  rig.gateway.register_schema(fhir::observation_schema("obs"));
  const DocId a = rig.gateway.insert("obs", rig.obs("A"));
  const DocId b = rig.gateway.insert("obs", rig.obs("B"));

  const Bytes blob_a = wire::get_bin(
      wire::unpack(rig.rpc.call(
          "doc.get", wire::pack({{"col", Value("obs")}, {"id", Value(a)}}))),
      "blob");
  rig.rpc.call("doc.put", wire::pack({{"col", Value("obs")},
                                      {"id", Value(b)},
                                      {"blob", Value(blob_a)}}));
  EXPECT_THROW(rig.gateway.read("obs", b), Error);
  EXPECT_NO_THROW(rig.gateway.read("obs", a));
}

TEST(FailureTest, SophosDeleteFailsLoudly) {
  Rig rig;
  schema::Schema s("append_only");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kString;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass2;
  f.operations = {schema::Operation::kInsert, schema::Operation::kEquality};
  s.field("name", f);

  // Force Sophos over Mitra via a promoted registry.
  TacticRegistry reg;
  register_det_tactic(reg);
  register_rnd_tactic(reg);
  register_mitra_tactic(reg);
  {
    TacticDescriptor d = SophosTactic::static_descriptor();
    d.preference = 100;
    reg.register_field_tactic(std::move(d), [](const GatewayContext& ctx) {
      return std::make_unique<SophosTactic>(ctx);
    });
  }
  register_biex2lev_tactic(reg);
  register_biexzmf_tactic(reg);
  register_ope_tactic(reg);
  register_ore_tactic(reg);
  register_paillier_tactic(reg);

  Gateway gw(rig.rpc, rig.kms, rig.local, reg,
             GatewayConfig{{{"sophos_modulus_bits", "512"}}});
  gw.register_schema(s);
  ASSERT_EQ(gw.plan("append_only").fields.at("name").eq_tactic, "Sophos");

  Document d;
  d.set("name", Value("permanent"));
  const DocId id = gw.insert("append_only", d);
  EXPECT_EQ(gw.equality_search("append_only", "name", Value("permanent")).size(), 1u);
  // Sophos has no deletion protocol: the middleware refuses, typed.
  EXPECT_THROW(gw.remove("append_only", id), Error);
}

TEST(FailureTest, KeyRotationWithoutReindexBreaksDecryptionLoudly) {
  // Rotating the document key without re-encrypting is an operator error;
  // the middleware must detect it (authentication failure), not return
  // garbage.
  Rig rig;
  rig.gateway.register_schema(fhir::observation_schema("obs"));
  const DocId id = rig.gateway.insert("obs", rig.obs("pre-rotation"));
  rig.kms.rotate("doc/obs");

  // The gateway instance caches its AesGcm, so a *new* gateway (fresh boot
  // after rotation) sees the new key and must reject the old blob.
  Gateway rebooted(rig.rpc, rig.kms, rig.local, registry(),
                   GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  rebooted.register_schema(fhir::observation_schema("obs"));
  EXPECT_THROW(rebooted.read("obs", id), Error);
}

TEST(FailureTest, MalformedRpcPayloadsRejectedByCloud) {
  Rig rig;
  EXPECT_THROW(rig.rpc.call("doc.get", Bytes{1, 2, 3}), Error);
  EXPECT_THROW(rig.rpc.call("doc.get", wire::pack({{"col", Value("x")}})), Error);
  EXPECT_THROW(rig.rpc.call("nonexistent.method", wire::pack({})), Error);
  // Cloud survives the abuse: normal calls still work.
  rig.gateway.register_schema(fhir::observation_schema("obs"));
  EXPECT_NO_THROW(rig.gateway.insert("obs", rig.obs("ok")));
}

TEST(FailureTest, AggregateOnUnprovisionedScopeIsNotFound) {
  Rig rig;
  EXPECT_THROW(rig.rpc.call("agg.sum", wire::pack({{"scope", Value("ghost")}})), Error);
  EXPECT_THROW(
      rig.rpc.call("agg.insert", wire::pack({{"scope", Value("ghost")},
                                             {"id", Value("d")},
                                             {"ct", Value(Bytes{1})}})),
      Error);
}

TEST(FailureTest, PolicyViolationsSurfaceAtSchemaRegistration) {
  Rig rig;
  schema::Schema s("impossible");
  schema::FieldAnnotation f;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass1;  // strongest bound...
  f.operations = {schema::Operation::kInsert, schema::Operation::kRange};  // ...but range
  s.field("x", f);
  try {
    rig.gateway.register_schema(s);
    FAIL() << "expected policy violation";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPolicyViolation);
  }
}

}  // namespace
}  // namespace datablinder::core
