// Mitra-Stateless tests — the library's implementation of the paper's
// concluding future-work direction (stateless SE for cloud-native
// gateways). The headline property under test: a brand-new gateway with NO
// local state (fresh KvStore, fresh tactic instances) serves updates and
// searches over an index built by a previous gateway incarnation.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/status.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "core/tactics/mitra_stateless_tactic.hpp"
#include "sse/mitra_stateless.hpp"

namespace datablinder {
namespace {

using core::DocId;
using doc::Document;
using doc::Value;

std::vector<sse::DocId> sorted(std::vector<sse::DocId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// --- scheme level -------------------------------------------------------------

TEST(MitraStatelessSchemeTest, UpdateAndSearchProtocol) {
  sse::MitraStatelessClient client(Bytes(32, 1));
  sse::MitraStatelessServer server;

  // Drive the two-round update protocol by hand.
  auto add = [&](const std::string& kw, const sse::DocId& id) {
    const auto label = client.counter_label(kw);
    const std::uint64_t current = client.decode_counter(kw, server.get_counter(label));
    server.apply_update(client.update(sse::MitraOp::kAdd, kw, id, current));
    server.put_counter(label, client.encode_counter(kw, current + 1));
  };
  add("diabetes", "d1");
  add("diabetes", "d2");
  add("cancer", "d3");

  const auto label = client.counter_label("diabetes");
  const std::uint64_t count = client.decode_counter("diabetes", server.get_counter(label));
  EXPECT_EQ(count, 2u);
  const auto values = server.search(client.search_token("diabetes", count));
  EXPECT_EQ(sorted(client.resolve("diabetes", values)),
            (std::vector<sse::DocId>{"d1", "d2"}));
}

TEST(MitraStatelessSchemeTest, FreshClientIsInterchangeable) {
  // No state export/import needed: any client with the key continues.
  sse::MitraStatelessClient first(Bytes(32, 2));
  sse::MitraStatelessServer server;
  const auto label = first.counter_label("kw");
  server.apply_update(first.update(sse::MitraOp::kAdd, "kw", "doc1", 0));
  server.put_counter(label, first.encode_counter("kw", 1));

  sse::MitraStatelessClient second(Bytes(32, 2));  // brand-new instance
  const std::uint64_t count = second.decode_counter("kw", server.get_counter(label));
  EXPECT_EQ(count, 1u);
  const auto values = server.search(second.search_token("kw", count));
  EXPECT_EQ(second.resolve("kw", values), std::vector<sse::DocId>{"doc1"});

  // ...and can append where the first left off.
  server.apply_update(second.update(sse::MitraOp::kAdd, "kw", "doc2", count));
  server.put_counter(label, second.encode_counter("kw", count + 1));
  const auto values2 = server.search(second.search_token("kw", 2));
  EXPECT_EQ(sorted(second.resolve("kw", values2)),
            (std::vector<sse::DocId>{"doc1", "doc2"}));
}

TEST(MitraStatelessSchemeTest, CounterBlobsAreUnlinkable) {
  sse::MitraStatelessClient client(Bytes(32, 3));
  // Probabilistic counter encryption: same count, different blobs.
  EXPECT_NE(client.encode_counter("kw", 5), client.encode_counter("kw", 5));
  // Tampered blob rejected loudly.
  Bytes blob = client.encode_counter("kw", 5);
  blob[10] ^= 1;
  EXPECT_THROW(client.decode_counter("kw", blob), Error);
  // Blob bound to its keyword.
  const Bytes other = client.encode_counter("other", 5);
  EXPECT_THROW(client.decode_counter("kw", other), Error);
}

TEST(MitraStatelessSchemeTest, DeletionsFold) {
  sse::MitraStatelessClient client(Bytes(32, 4));
  sse::MitraStatelessServer server;
  const auto label = client.counter_label("w");
  std::uint64_t c = 0;
  auto step = [&](sse::MitraOp op, const sse::DocId& id) {
    server.apply_update(client.update(op, "w", id, c));
    server.put_counter(label, client.encode_counter("w", ++c));
  };
  step(sse::MitraOp::kAdd, "a");
  step(sse::MitraOp::kAdd, "b");
  step(sse::MitraOp::kDelete, "a");
  const auto values = server.search(client.search_token("w", c));
  EXPECT_EQ(client.resolve("w", values), std::vector<sse::DocId>{"b"});
}

// --- middleware level ------------------------------------------------------------

core::TacticRegistry stateless_registry() {
  core::TacticRegistry r;
  core::register_det_tactic(r);
  core::register_rnd_tactic(r);
  core::register_mitra_tactic(r);
  {
    // Promote Mitra-SL over Mitra for equality.
    core::TacticDescriptor d = core::MitraStatelessTactic::static_descriptor();
    d.preference = 100;
    r.register_field_tactic(std::move(d), [](const core::GatewayContext& ctx) {
      return std::make_unique<core::MitraStatelessTactic>(ctx);
    });
  }
  core::register_sophos_tactic(r);
  core::register_biex2lev_tactic(r);
  core::register_biexzmf_tactic(r);
  core::register_ope_tactic(r);
  core::register_ore_tactic(r);
  core::register_paillier_tactic(r);
  return r;
}

schema::Schema name_schema() {
  schema::Schema s("people");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kString;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass2;
  f.operations = {schema::Operation::kInsert, schema::Operation::kEquality};
  s.field("name", f);
  return s;
}

TEST(MitraStatelessGatewayTest, SurvivesGatewayReboot) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  const Bytes master(32, 7);
  const core::TacticRegistry registry = stateless_registry();

  // Incarnation 1 inserts and is destroyed — its local KvStore dies with it.
  {
    kms::KeyManager kms(master);
    store::KvStore local;
    core::Gateway gw(rpc, kms, local, registry, {});
    gw.register_schema(name_schema());
    ASSERT_EQ(gw.plan("people").fields.at("name").eq_tactic, "Mitra-SL");
    for (const char* who : {"alice", "bob", "alice"}) {
      Document d;
      d.set("name", Value(who));
      gw.insert("people", d);
    }
  }

  // Incarnation 2: fresh everything in the trusted zone (same master key).
  kms::KeyManager kms(master);
  store::KvStore local;
  core::Gateway rebooted(rpc, kms, local, registry, {});
  rebooted.register_schema(name_schema());
  EXPECT_EQ(rebooted.equality_search("people", "name", Value("alice")).size(), 2u);
  EXPECT_EQ(rebooted.equality_search("people", "name", Value("bob")).size(), 1u);

  // And it can continue writing seamlessly.
  Document d;
  d.set("name", Value("alice"));
  rebooted.insert("people", d);
  EXPECT_EQ(rebooted.equality_search("people", "name", Value("alice")).size(), 3u);
}

TEST(MitraStatelessGatewayTest, StatefulMitraLosesStateOnReboot) {
  // Contrast test: the SAME reboot scenario with plain Mitra silently
  // loses searchability (counters lived in the dead gateway's memory/store)
  // — exactly the operational problem the stateless variant removes.
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  const Bytes master(32, 8);
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);

  {
    kms::KeyManager kms(master);
    store::KvStore local;  // dies with this scope
    core::Gateway gw(rpc, kms, local, registry, {});
    gw.register_schema(name_schema());
    ASSERT_EQ(gw.plan("people").fields.at("name").eq_tactic, "Mitra");
    Document d;
    d.set("name", Value("alice"));
    gw.insert("people", d);
    EXPECT_EQ(gw.equality_search("people", "name", Value("alice")).size(), 1u);
  }

  kms::KeyManager kms(master);
  store::KvStore local;
  core::Gateway rebooted(rpc, kms, local, registry, {});
  rebooted.register_schema(name_schema());
  // The cloud still holds the entry, but the fresh gateway's counter is 0:
  // it cannot derive any search addresses.
  EXPECT_EQ(rebooted.equality_search("people", "name", Value("alice")).size(), 0u);
}

TEST(MitraStatelessGatewayTest, DeleteThroughMiddleware) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  const core::TacticRegistry registry = stateless_registry();
  core::Gateway gw(rpc, kms, local, registry, {});
  gw.register_schema(name_schema());

  Document d;
  d.set("name", Value("carol"));
  const DocId id = gw.insert("people", d);
  EXPECT_EQ(gw.equality_search("people", "name", Value("carol")).size(), 1u);
  gw.remove("people", id);
  EXPECT_EQ(gw.equality_search("people", "name", Value("carol")).size(), 0u);
}

}  // namespace
}  // namespace datablinder
