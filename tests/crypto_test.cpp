// Known-answer and behavioural tests for the crypto substrate.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/status.hpp"
#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/ctr.hpp"
#include "crypto/gcm.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "crypto/prf.hpp"
#include "crypto/sha256.hpp"
#include "crypto/siv.hpp"

namespace datablinder::crypto {
namespace {

TEST(Sha256Test, Fips180KnownAnswers) {
  EXPECT_EQ(hex_encode(Sha256::digest(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex_encode(Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_encode(Sha256::digest(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const Bytes data = DetRng(1).bytes(10000);
  for (std::size_t split : {0u, 1u, 63u, 64u, 65u, 5000u, 9999u}) {
    Sha256 h;
    h.update(BytesView(data).first(split));
    h.update(BytesView(data).subspan(split));
    EXPECT_EQ(h.finalize(), Sha256::digest(data)) << "split=" << split;
  }
}

TEST(HmacTest, Rfc4231Vectors) {
  // Test case 1.
  EXPECT_EQ(hex_encode(HmacSha256::mac(Bytes(20, 0x0b), to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2.
  EXPECT_EQ(hex_encode(HmacSha256::mac(to_bytes("Jefe"),
                                       to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Test case 6: key larger than block size.
  EXPECT_EQ(hex_encode(HmacSha256::mac(
                Bytes(131, 0xaa),
                to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, VerifyRejectsWrongTag) {
  const Bytes key = to_bytes("k");
  const Bytes msg = to_bytes("m");
  Bytes tag = HmacSha256::mac(key, msg);
  EXPECT_TRUE(HmacSha256::verify(key, msg, tag));
  tag[0] ^= 1;
  EXPECT_FALSE(HmacSha256::verify(key, msg, tag));
}

TEST(HkdfTest, Rfc5869TestCase1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = hex_decode("000102030405060708090a0b0c");
  const Bytes info = hex_decode("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(hex_encode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(AesTest, Fips197KnownAnswers) {
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  struct Case {
    const char* key;
    const char* ct;
  };
  const Case cases[] = {
      {"000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"},
      {"000102030405060708090a0b0c0d0e0f1011121314151617",
       "dda97ca4864cdfe06eaf70a0ec0d7191"},
      {"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
       "8ea2b7ca516745bfeafc49904b496089"},
  };
  for (const auto& c : cases) {
    Aes aes(hex_decode(c.key));
    std::uint8_t block[16];
    std::copy(pt.begin(), pt.end(), block);
    aes.encrypt_block(block);
    EXPECT_EQ(hex_encode(Bytes(block, block + 16)), c.ct);
    aes.decrypt_block(block);
    EXPECT_EQ(Bytes(block, block + 16), pt);
  }
}

TEST(AesTest, RejectsBadKeySizes) {
  EXPECT_THROW(Aes(Bytes(15, 0)), Error);
  EXPECT_THROW(Aes(Bytes(33, 0)), Error);
  EXPECT_THROW(Aes(Bytes{}), Error);
}

TEST(CtrTest, RoundTripAndSeekConsistency) {
  const Aes aes(Bytes(16, 0x42));
  std::array<std::uint8_t, 16> counter{};
  const Bytes pt = DetRng(7).bytes(1000);
  Bytes ct = aes_ctr(aes, counter, pt);
  EXPECT_NE(ct, pt);
  EXPECT_EQ(aes_ctr(aes, counter, ct), pt);
}

TEST(GcmTest, NistCaseWithAad) {
  AesGcm g(hex_decode("feffe9928665731c6d6a8f9467308308"));
  const Bytes iv = hex_decode("cafebabefacedbaddecaf888");
  const Bytes pt = hex_decode(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const Bytes aad = hex_decode("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const Bytes sealed = g.seal(iv, pt, aad);
  EXPECT_EQ(hex_encode(Bytes(sealed.begin(), sealed.end() - 16)),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091");
  EXPECT_EQ(hex_encode(Bytes(sealed.end() - 16, sealed.end())),
            "5bc94fbc3221a5db94fae95ae7121a47");
  const auto opened = g.open(iv, sealed, aad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(GcmTest, EmptyPlaintextKnownTag) {
  AesGcm g(Bytes(16, 0));
  const Bytes iv(12, 0);
  const Bytes sealed = g.seal(iv, {});
  EXPECT_EQ(hex_encode(sealed), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(GcmTest, TamperDetection) {
  AesGcm g(Bytes(32, 9));
  Bytes sealed = g.seal_random_nonce(to_bytes("secret"), to_bytes("ctx"));
  EXPECT_TRUE(g.open_with_nonce(sealed, to_bytes("ctx")).has_value());
  // Wrong AAD.
  EXPECT_FALSE(g.open_with_nonce(sealed, to_bytes("other")).has_value());
  // Flipped ciphertext bit.
  sealed[14] ^= 1;
  EXPECT_FALSE(g.open_with_nonce(sealed, to_bytes("ctx")).has_value());
}

TEST(GcmTest, RandomNoncesDiffer) {
  AesGcm g(Bytes(16, 1));
  const Bytes a = g.seal_random_nonce(to_bytes("x"));
  const Bytes b = g.seal_random_nonce(to_bytes("x"));
  EXPECT_NE(a, b);  // probabilistic encryption
}

TEST(SivTest, DeterministicAndAuthenticated) {
  AesSiv siv(Bytes(32, 7));
  const Bytes c1 = siv.seal(to_bytes("hello"), to_bytes("aad"));
  const Bytes c2 = siv.seal(to_bytes("hello"), to_bytes("aad"));
  EXPECT_EQ(c1, c2);  // deterministic
  EXPECT_NE(c1, siv.seal(to_bytes("hello"), to_bytes("other-aad")));
  EXPECT_NE(c1, siv.seal(to_bytes("hellp"), to_bytes("aad")));

  const auto opened = siv.open(c1, to_bytes("aad"));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(to_string(*opened), "hello");
  EXPECT_FALSE(siv.open(c1, to_bytes("wrong")).has_value());

  Bytes tampered = c1;
  tampered[20] ^= 1;
  EXPECT_FALSE(siv.open(tampered, to_bytes("aad")).has_value());
}

TEST(SivTest, KeySeparation) {
  AesSiv a(Bytes(32, 1));
  AesSiv b(Bytes(32, 2));
  EXPECT_NE(a.seal(to_bytes("v")), b.seal(to_bytes("v")));
  EXPECT_FALSE(b.open(a.seal(to_bytes("v"))).has_value());
}

TEST(PrfTest, LabelsSeparateDomains) {
  const Bytes key(32, 3);
  EXPECT_NE(prf_labeled(key, "a", to_bytes("x")), prf_labeled(key, "b", to_bytes("x")));
  // label||input ambiguity is broken by the separator byte.
  EXPECT_NE(prf_labeled(key, "ab", to_bytes("c")), prf_labeled(key, "a", to_bytes("bc")));
}

TEST(PrfTest, PrfNExtendsDeterministically) {
  const Bytes key(32, 5);
  const Bytes long1 = prf_n(key, to_bytes("in"), 100);
  const Bytes long2 = prf_n(key, to_bytes("in"), 100);
  EXPECT_EQ(long1, long2);
  EXPECT_EQ(long1.size(), 100u);
  const Bytes short1 = prf_n(key, to_bytes("in"), 8);
  EXPECT_EQ(short1.size(), 8u);
}

TEST(RngTest, SecureRngProducesDistinctValues) {
  EXPECT_NE(SecureRng::bytes(32), SecureRng::bytes(32));
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(SecureRng::uniform(17), 17u);
  }
}

TEST(RngTest, DetRngIsDeterministic) {
  DetRng a(99), b(99);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.uniform(1000), b.uniform(1000));
}

}  // namespace
}  // namespace datablinder::crypto
