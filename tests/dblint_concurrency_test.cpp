// dblint concurrency-analyzer tests (R14–R16): each rule must fire on a bad
// fixture, stay quiet on the matching good fixture, and honour
// `// dblint:allow(<rule>)` escapes. The thread-root discovery heuristics,
// guarded-by inference, guard-lifecycle lockset normalization, the v2 facts
// cache, and the doc/CONCURRENCY.md drift gate are covered here too.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache.hpp"
#include "concurrency.hpp"
#include "index.hpp"
#include "lint.hpp"
#include "sarif.hpp"

namespace dblint {
namespace {

bool has_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

const Diagnostic* find_rule(const std::vector<Diagnostic>& diags,
                            const std::string& rule) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) return &d;
  }
  return nullptr;
}

bool has_root(const ConcurrencyAnalysis& a, const std::string& qualified,
              const std::string& how) {
  return std::any_of(a.roots.begin(), a.roots.end(), [&](const ThreadRoot& r) {
    return r.qualified == qualified && r.how == how;
  });
}

const GuardedByEntry* find_field(const ConcurrencyAnalysis& a,
                                 const std::string& field) {
  for (const GuardedByEntry& e : a.guarded_by) {
    if (e.field == field) return &e;
  }
  return nullptr;
}

// --- R14: inconsistent-lockset ---------------------------------------------

// A lock-owning class (it has a mutex member) whose field is written under
// the mutex in one method and bare in a thread-rooted method.
const char* kCounterRacy =
    "class Counter {\n"
    " public:\n"
    "  void bump();\n"
    "  void reset();\n"
    " private:\n"
    "  std::mutex mutex_;\n"
    "  int value_ = 0;\n"
    "};\n"
    "void Counter::bump() {\n"
    "  std::lock_guard<std::mutex> lock(mutex_);\n"
    "  value_ = 1;\n"
    "}\n"
    "// dblint:thread-root\n"
    "void Counter::reset() {\n"
    "  value_ = 0;\n"
    "}\n";

TEST(DblintInconsistentLockset, FlagsUnguardedWriteAgainstLockedWrite) {
  const auto diags = lint_indexed({{"src/store/c.cpp", kCounterRacy}});
  const Diagnostic* d = find_rule(diags, "inconsistent-lockset");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("Counter::value_"), std::string::npos);
  EXPECT_NE(d->message.find("no lock"), std::string::npos);
  EXPECT_FALSE(d->trace.empty());
}

TEST(DblintInconsistentLockset, ConsistentLockingAndAtomicsPass) {
  const auto consistent = lint_indexed({{"src/store/c.cpp",
      "class Counter {\n"
      " public:\n"
      "  void bump();\n"
      "  void reset();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  int value_ = 0;\n"
      "};\n"
      "void Counter::bump() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  value_ = 1;\n"
      "}\n"
      "// dblint:thread-root\n"
      "void Counter::reset() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  value_ = 0;\n"
      "}\n"}});
  EXPECT_FALSE(has_rule(consistent, "inconsistent-lockset"));

  const auto atomic = lint_indexed({{"src/store/c.cpp",
      "class Counter {\n"
      " public:\n"
      "  void bump();\n"
      "  void reset();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  std::atomic<int> value_{0};\n"
      "};\n"
      "void Counter::bump() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  value_ = 1;\n"
      "}\n"
      "// dblint:thread-root\n"
      "void Counter::reset() {\n"
      "  value_ = 0;\n"
      "}\n"}});
  EXPECT_FALSE(has_rule(atomic, "inconsistent-lockset"));
}

TEST(DblintInconsistentLockset, ValueTypesWithoutOwnMutexPass) {
  // RacerD's ownership heuristic: a class with no synchronization member is
  // a value type; its instances live in one frame at a time.
  const auto diags = lint_indexed({{"src/crypto/p.cpp",
      "class Pt {\n"
      " public:\n"
      "  void w();\n"
      "  void r();\n"
      " private:\n"
      "  int x_ = 0;\n"
      "};\n"
      "void Pt::w() { x_ = 1; }\n"
      "// dblint:thread-root\n"
      "void Pt::r() { x_ = 2; }\n"}});
  EXPECT_FALSE(has_rule(diags, "inconsistent-lockset"));
}

TEST(DblintInconsistentLockset, AtomicAggregateFieldsPass) {
  // A struct made entirely of std::atomic members (a stats block) needs no
  // guard: every member access is individually atomic.
  const auto diags = lint_indexed({{"src/net/m.cpp",
      "struct NetStats {\n"
      "  std::atomic<int> sent{0};\n"
      "  std::atomic<int> recv{0};\n"
      "};\n"
      "class Link {\n"
      " public:\n"
      "  void a();\n"
      "  void b();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  NetStats stats_;\n"
      "};\n"
      "void Link::a() {\n"
      "  std::lock_guard<std::mutex> l(mutex_);\n"
      "  stats_.sent = 1;\n"
      "}\n"
      "// dblint:thread-root\n"
      "void Link::b() { stats_.recv = 1; }\n"}});
  EXPECT_FALSE(has_rule(diags, "inconsistent-lockset"));
}

TEST(DblintInconsistentLockset, AllowEscapeSuppresses) {
  const auto diags = lint_indexed({{"src/store/c.cpp",
      "class Counter {\n"
      " public:\n"
      "  void bump();\n"
      "  void reset();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  int value_ = 0;\n"
      "};\n"
      "void Counter::bump() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  value_ = 1;  // dblint:allow(inconsistent-lockset): fixture\n"
      "}\n"
      "// dblint:thread-root\n"
      "void Counter::reset() {\n"
      "  value_ = 0;  // dblint:allow(inconsistent-lockset): fixture\n"
      "}\n"}});
  EXPECT_FALSE(has_rule(diags, "inconsistent-lockset"));
}

TEST(DblintInconsistentLockset, CrossTuRaceReportsFullTrace) {
  // The planted race: a locked write in one TU, an unguarded read reachable
  // from a thread root in another. The summary fixpoint must stitch the
  // whole chain into the trace.
  const std::vector<FileInput> files = {
      {"src/store/s.hpp",
       "class Store {\n"
       " public:\n"
       "  void touch();\n"
       "  int peek();\n"
       "  void monitor();\n"
       " private:\n"
       "  std::mutex mutex_;\n"
       "  int value_ = 0;\n"
       "};\n"},
      {"src/store/a.cpp",
       "void Store::touch() {\n"
       "  std::lock_guard<std::mutex> lock(mutex_);\n"
       "  value_ = 1;\n"
       "}\n"},
      {"src/store/b.cpp",
       "int Store::peek() {\n"
       "  const int v = value_;\n"
       "  return v;\n"
       "}\n"
       "// dblint:thread-root\n"
       "void Store::monitor() {\n"
       "  const int snapshot = peek();\n"
       "  (void)snapshot;\n"
       "}\n"}};
  const auto diags = lint_indexed(files);
  const Diagnostic* d = find_rule(diags, "inconsistent-lockset");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->file, "src/store/a.cpp");
  EXPECT_EQ(d->line, 3);
  EXPECT_NE(d->message.find("'Store::value_'"), std::string::npos);
  EXPECT_NE(d->message.find("{Store::mutex_}"), std::string::npos);
  EXPECT_NE(d->message.find("read with no lock at src/store/b.cpp:2"),
            std::string::npos);

  // Exact trace: locked-write chain, then the conflicting thread-root chain.
  ASSERT_EQ(d->trace.size(), 6u);
  EXPECT_EQ(d->trace[0].file, "src/store/a.cpp");
  EXPECT_EQ(d->trace[0].line, 1);
  EXPECT_NE(d->trace[0].note.find("entry point 'Store::touch'"),
            std::string::npos);
  EXPECT_EQ(d->trace[1].file, "src/store/a.cpp");
  EXPECT_EQ(d->trace[1].line, 3);
  EXPECT_NE(d->trace[1].note.find(
                "write of 'Store::value_' with {Store::mutex_} in Store::touch"),
            std::string::npos);
  EXPECT_EQ(d->trace[2].file, "src/store/b.cpp");
  EXPECT_EQ(d->trace[2].line, 2);
  EXPECT_NE(d->trace[2].note.find("conflicting read with no lock"),
            std::string::npos);
  EXPECT_EQ(d->trace[3].file, "src/store/b.cpp");
  EXPECT_EQ(d->trace[3].line, 6);
  EXPECT_NE(d->trace[3].note.find("thread root 'Store::monitor' (annotation)"),
            std::string::npos);
  EXPECT_EQ(d->trace[4].file, "src/store/b.cpp");
  EXPECT_EQ(d->trace[4].line, 7);
  EXPECT_NE(d->trace[4].note.find("calls 'peek()' in Store::monitor"),
            std::string::npos);
  EXPECT_EQ(d->trace[5].file, "src/store/b.cpp");
  EXPECT_EQ(d->trace[5].line, 2);
  EXPECT_NE(d->trace[5].note.find(
                "read of 'Store::value_' with no lock in Store::peek"),
            std::string::npos);

  // The same trace must survive SARIF export as a codeFlow.
  const std::string sarif = to_sarif({*d});
  EXPECT_NE(sarif.find("\"ruleId\": \"inconsistent-lockset\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"codeFlows\""), std::string::npos);
  EXPECT_NE(sarif.find("thread root 'Store::monitor' (annotation)"),
            std::string::npos);
}

// --- R15: guard-escape -----------------------------------------------------

TEST(DblintGuardEscape, FlagsReturnOfAliasUnderLock) {
  const auto diags = lint_indexed({{"src/store/e.cpp",
      "class Buf {\n"
      " public:\n"
      "  const char* name();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  std::string name_;\n"
      "};\n"
      "const char* Buf::name() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  return name_.c_str();\n"
      "}\n"}});
  const Diagnostic* d = find_rule(diags, "guard-escape");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 10);
  EXPECT_NE(d->message.find("'Buf::name_'"), std::string::npos);
  EXPECT_NE(d->message.find("escapes"), std::string::npos);
}

TEST(DblintGuardEscape, FlagsUseAfterRelease) {
  const auto diags = lint_indexed({{"src/store/e.cpp",
      "class Buf {\n"
      " public:\n"
      "  void scan();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  std::vector<int> data_;\n"
      "};\n"
      "void Buf::scan() {\n"
      "  const int* p = nullptr;\n"
      "  {\n"
      "    std::lock_guard<std::mutex> lock(mutex_);\n"
      "    p = data_.data();\n"
      "  }\n"
      "  consume(p);\n"
      "}\n"}});
  const Diagnostic* d = find_rule(diags, "guard-escape");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 14);
  EXPECT_NE(d->message.find("'p'"), std::string::npos);
  EXPECT_NE(d->message.find("'Buf::data_'"), std::string::npos);
}

TEST(DblintGuardEscape, UseInsideCriticalSectionAndCopiesPass) {
  const auto diags = lint_indexed({{"src/store/e.cpp",
      "class Buf {\n"
      " public:\n"
      "  void ok();\n"
      "  std::string copy_out();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  std::string name_;\n"
      "};\n"
      "void Buf::ok() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  const char* p = name_.c_str();\n"
      "  consume(p);\n"
      "}\n"
      "std::string Buf::copy_out() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  std::string c = name_;\n"
      "  return c;\n"
      "}\n"}});
  EXPECT_FALSE(has_rule(diags, "guard-escape"));
}

TEST(DblintGuardEscape, AllowEscapeSuppresses) {
  const auto diags = lint_indexed({{"src/store/e.cpp",
      "class Buf {\n"
      " public:\n"
      "  const char* name();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  std::string name_;\n"
      "};\n"
      "const char* Buf::name() {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  return name_.c_str();  // dblint:allow(guard-escape): fixture\n"
      "}\n"}});
  EXPECT_FALSE(has_rule(diags, "guard-escape"));
}

// --- R16: lock-order-cycle -------------------------------------------------

TEST(DblintLockOrderCycle, FlagsInterproceduralCycle) {
  const auto diags = lint_indexed({{"src/core/ab.cpp",
      "class Pair {\n"
      " public:\n"
      "  void one();\n"
      "  void two();\n"
      "  void one_impl();\n"
      "  void two_impl();\n"
      " private:\n"
      "  std::mutex m1_;\n"
      "  std::mutex m2_;\n"
      "};\n"
      "void Pair::one() {\n"
      "  std::lock_guard<std::mutex> a(m1_);\n"
      "  two_impl();\n"
      "}\n"
      "void Pair::two() {\n"
      "  std::lock_guard<std::mutex> b(m2_);\n"
      "  one_impl();\n"
      "}\n"
      "void Pair::one_impl() {\n"
      "  std::lock_guard<std::mutex> c(m1_);\n"
      "}\n"
      "void Pair::two_impl() {\n"
      "  std::lock_guard<std::mutex> d(m2_);\n"
      "}\n"}});
  const Diagnostic* d = find_rule(diags, "lock-order-cycle");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("Pair::m1_"), std::string::npos);
  EXPECT_NE(d->message.find("Pair::m2_"), std::string::npos);
  EXPECT_NE(d->message.find("across the call graph"), std::string::npos);
  EXPECT_FALSE(d->trace.empty());
}

TEST(DblintLockOrderCycle, ConsistentOrderPasses) {
  const auto diags = lint_indexed({{"src/core/ab.cpp",
      "class Pair {\n"
      " public:\n"
      "  void one();\n"
      "  void two();\n"
      "  void two_impl();\n"
      " private:\n"
      "  std::mutex m1_;\n"
      "  std::mutex m2_;\n"
      "};\n"
      "void Pair::one() {\n"
      "  std::lock_guard<std::mutex> a(m1_);\n"
      "  two_impl();\n"
      "}\n"
      "void Pair::two() {\n"
      "  std::lock_guard<std::mutex> b(m1_);\n"
      "  two_impl();\n"
      "}\n"
      "void Pair::two_impl() {\n"
      "  std::lock_guard<std::mutex> d(m2_);\n"
      "}\n"}});
  EXPECT_FALSE(has_rule(diags, "lock-order-cycle"));
}

TEST(DblintLockOrderCycle, AllowFnEscapeSuppresses) {
  const auto diags = lint_indexed({{"src/core/ab.cpp",
      "class Pair {\n"
      " public:\n"
      "  void one();\n"
      "  void two();\n"
      "  void one_impl();\n"
      "  void two_impl();\n"
      " private:\n"
      "  std::mutex m1_;\n"
      "  std::mutex m2_;\n"
      "};\n"
      "// dblint:allow-fn(lock-order-cycle): fixture\n"
      "void Pair::one() {\n"
      "  std::lock_guard<std::mutex> a(m1_);\n"
      "  two_impl();\n"
      "}\n"
      "// dblint:allow-fn(lock-order-cycle): fixture\n"
      "void Pair::two() {\n"
      "  std::lock_guard<std::mutex> b(m2_);\n"
      "  one_impl();\n"
      "}\n"
      "void Pair::one_impl() {\n"
      "  std::lock_guard<std::mutex> c(m1_);\n"
      "}\n"
      "void Pair::two_impl() {\n"
      "  std::lock_guard<std::mutex> d(m2_);\n"
      "}\n"}});
  EXPECT_FALSE(has_rule(diags, "lock-order-cycle"));
}

// --- Thread-root discovery -------------------------------------------------

TEST(DblintThreadRoots, DiscoversAnnotationCtorArgsDetachAndSubmit) {
  const RepoIndex index = build_index({{"src/core/r.cpp",
      "class Pool {\n"
      " public:\n"
      "  void start();\n"
      "  void refill();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  std::thread worker_;\n"
      "};\n"
      "void Pool::start() {\n"
      "  worker_ = std::thread(&Pool::refill, this);\n"
      "}\n"
      "void Pool::refill() {}\n"
      "void pump() {}\n"
      "void spin() {\n"
      "  std::thread(pump).detach();\n"
      "}\n"
      "// dblint:thread-root\n"
      "void annotated() {}\n"}});
  const ConcurrencyAnalysis a = analyze_concurrency(index);
  // The spawner itself, the `&Cls::method` target, the lone free-function
  // argument, and the explicit annotation are all roots.
  EXPECT_TRUE(has_root(a, "Pool::start", "thread-ctor"));
  EXPECT_TRUE(has_root(a, "Pool::refill", "thread-ctor"));
  EXPECT_TRUE(has_root(a, "pump", "thread-ctor"));
  EXPECT_TRUE(has_root(a, "spin", "thread-ctor"));
  EXPECT_TRUE(has_root(a, "annotated", "annotation"));
}

TEST(DblintThreadRoots, LoneMethodNamesInLambdasAreNotRoots) {
  // `jar.refresh()` inside a thread lambda must not mark Jar::refresh a
  // root by bare name — the spawning function is the root, and reachability
  // covers the lambda's calls through its summary.
  const RepoIndex index = build_index({{"src/core/j.cpp",
      "class Jar {\n"
      " public:\n"
      "  void refresh();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  int level_ = 0;\n"
      "};\n"
      "void Jar::refresh() { level_ = 1; }\n"
      "void go(Jar& jar) {\n"
      "  std::thread([&] { jar.refresh(); }).detach();\n"
      "}\n"}});
  const ConcurrencyAnalysis a = analyze_concurrency(index);
  EXPECT_TRUE(has_root(a, "go", "thread-ctor"));
  EXPECT_FALSE(has_root(a, "Jar::refresh", "thread-ctor"));
}

TEST(DblintThreadRoots, ExecutorSubmitMarksSubmitter) {
  const RepoIndex index = build_index({{"src/core/s.cpp",
      "void fan_out(Executor& pool) {\n"
      "  pool.submit([] { work(); });\n"
      "}\n"}});
  const ConcurrencyAnalysis a = analyze_concurrency(index);
  EXPECT_TRUE(has_root(a, "fan_out", "executor-submit"));
}

// --- Guarded-by inference --------------------------------------------------

TEST(DblintGuardedBy, InfersIntersectionAcrossWrites) {
  const RepoIndex index = build_index({{"src/store/g.cpp",
      "class Gauge {\n"
      " public:\n"
      "  void a();\n"
      "  void b();\n"
      "  void c();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  int v_ = 0;\n"
      "  int w_ = 0;\n"
      "  std::atomic<int> hits_{0};\n"
      "};\n"
      "void Gauge::a() {\n"
      "  std::lock_guard<std::mutex> l(mutex_);\n"
      "  v_ = 1;\n"
      "  w_ = 1;\n"
      "  hits_ = 1;\n"
      "}\n"
      "void Gauge::b() { v_ = 2; }\n"
      "void Gauge::c() {\n"
      "  std::lock_guard<std::mutex> l(mutex_);\n"
      "  w_ = 2;\n"
      "}\n"}});
  const ConcurrencyAnalysis a = analyze_concurrency(index);

  // v_ has a bare write: the intersection over writes is empty.
  const GuardedByEntry* v = find_field(a, "Gauge::v_");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->writes, 2u);
  EXPECT_TRUE(v->guards.empty());

  // w_ is written under mutex_ everywhere: the intersection keeps it.
  const GuardedByEntry* w = find_field(a, "Gauge::w_");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->writes, 2u);
  ASSERT_EQ(w->guards.size(), 1u);
  EXPECT_EQ(w->guards[0], "Gauge::mutex_");

  // hits_ is atomic; the markdown renders it as such.
  const GuardedByEntry* h = find_field(a, "Gauge::hits_");
  ASSERT_NE(h, nullptr);
  EXPECT_TRUE(h->is_atomic);

  const std::string md = concurrency_markdown(a);
  EXPECT_NE(md.find("| Gauge::w_ | int | Gauge::mutex_ |"), std::string::npos);
  EXPECT_NE(md.find("| Gauge::v_ | int | (none) |"), std::string::npos);
  EXPECT_NE(md.find("(atomic)"), std::string::npos);
}

TEST(DblintGuardedBy, MarkdownIsDeterministic) {
  const std::vector<FileInput> files = {{"src/store/g.cpp",
      "class Gauge {\n"
      " public:\n"
      "  void a();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  int v_ = 0;\n"
      "};\n"
      "// dblint:thread-root\n"
      "void Gauge::a() {\n"
      "  std::lock_guard<std::mutex> l(mutex_);\n"
      "  v_ = 1;\n"
      "}\n"}};
  const std::string first = concurrency_markdown(analyze_concurrency(build_index(files)));
  const std::string second = concurrency_markdown(analyze_concurrency(build_index(files)));
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("## Thread roots"), std::string::npos);
  EXPECT_NE(first.find("## Guarded-by map"), std::string::npos);
}

// --- Guard-lifecycle lockset normalization ---------------------------------

TEST(DblintGuardNormalization, DeferredAndMidScopeUnlockShrinkLocksets) {
  const RepoIndex index = build_index({{"src/store/n.cpp",
      "class Norm {\n"
      " public:\n"
      "  void f();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  int value_ = 0;\n"
      "};\n"
      "void Norm::f() {\n"
      "  std::unique_lock<std::mutex> lk(mutex_, std::defer_lock);\n"
      "  value_ = 1;\n"
      "  lk.lock();\n"
      "  value_ = 2;\n"
      "  lk.unlock();\n"
      "  value_ = 3;\n"
      "}\n"}});
  const FunctionInfo* f = nullptr;
  for (const FileIndex& file : index.files) {
    for (const FunctionInfo& fn : file.functions) {
      if (fn.qualified == "Norm::f") f = &fn;
    }
  }
  ASSERT_NE(f, nullptr);

  std::vector<std::vector<std::string>> write_locksets;
  for (const FieldAccess& a : f->accesses) {
    if (a.field == "Norm::value_" && a.is_write) {
      write_locksets.push_back(a.held_mutexes);
    }
  }
  ASSERT_EQ(write_locksets.size(), 3u);
  EXPECT_TRUE(write_locksets[0].empty());  // before lk.lock(): deferred
  ASSERT_EQ(write_locksets[1].size(), 1u);  // between lock() and unlock()
  EXPECT_EQ(write_locksets[1][0], "Norm::mutex_");
  EXPECT_TRUE(write_locksets[2].empty());  // after lk.unlock()
}

// --- v2 facts cache --------------------------------------------------------

TEST(DblintCacheV2, RejectsOlderFormatVersion) {
  namespace fs = std::filesystem;
  const std::string path = "src/store/s.cpp";
  const std::string content = "void f() {}\n";
  const FileFacts facts = compute_file_facts(path, content);
  const std::string dir = ::testing::TempDir() + "/dblint-cache-ver";
  fs::remove_all(dir);
  store_file_facts(dir, path, fnv1a64(content), facts);

  fs::path cache_file;
  for (const auto& e : fs::directory_iterator(dir)) cache_file = e.path();
  ASSERT_FALSE(cache_file.empty());

  std::ifstream in(cache_file, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string buf = ss.str();
  in.close();
  const std::size_t at = buf.find("dblintcache 2 ");
  ASSERT_NE(at, std::string::npos);  // header carries the current version
  buf.replace(at, std::string("dblintcache 2 ").size(), "dblintcache 1 ");
  std::ofstream(cache_file, std::ios::binary | std::ios::trunc) << buf;

  // Entries written by an older dblint must be recomputed, not trusted: the
  // v1 format predates the concurrency fact records.
  FileFacts out;
  EXPECT_FALSE(load_file_facts(dir, path, fnv1a64(content), &out));
}

TEST(DblintCacheV2, RoundTripsConcurrencyFacts) {
  const std::string path = "src/store/s.cpp";
  const std::string content =
      "class KvStore {\n"
      " public:\n"
      "  void sync();\n"
      " private:\n"
      "  std::mutex mutex_;\n"
      "  std::atomic<int> gen_{0};\n"
      "  int value_ = 0;\n"
      "};\n"
      "// dblint:thread-root\n"
      "void KvStore::sync() {\n"
      "  std::unique_lock<std::mutex> lk(mutex_, std::defer_lock);\n"
      "  lk.lock();\n"
      "  value_ = 1;\n"
      "  lk.unlock();\n"
      "}\n";
  const FileFacts facts = compute_file_facts(path, content);

  // The fixture must exercise every new fact class before we trust the
  // round-trip comparison.
  ASSERT_EQ(facts.index.fields.size(), 3u);
  ASSERT_EQ(facts.index.functions.size(), 1u);
  const FunctionInfo& fn = facts.index.functions[0];
  EXPECT_TRUE(fn.thread_root);
  ASSERT_FALSE(fn.guards.empty());
  EXPECT_EQ(fn.guards[0].var, "lk");
  ASSERT_FALSE(fn.accesses.empty());

  const std::string dir = ::testing::TempDir() + "/dblint-cache-conc";
  std::filesystem::remove_all(dir);
  store_file_facts(dir, path, fnv1a64(content), facts);
  FileFacts loaded;
  ASSERT_TRUE(load_file_facts(dir, path, fnv1a64(content), &loaded));

  ASSERT_EQ(loaded.index.fields.size(), facts.index.fields.size());
  for (std::size_t i = 0; i < facts.index.fields.size(); ++i) {
    const FieldDecl& a = facts.index.fields[i];
    const FieldDecl& b = loaded.index.fields[i];
    EXPECT_EQ(b.class_name, a.class_name);
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.type, a.type);
    EXPECT_EQ(b.is_atomic, a.is_atomic);
    EXPECT_EQ(b.is_sync, a.is_sync);
  }

  ASSERT_EQ(loaded.index.functions.size(), 1u);
  const FunctionInfo& lf = loaded.index.functions[0];
  EXPECT_EQ(lf.thread_root, fn.thread_root);
  ASSERT_EQ(lf.guards.size(), fn.guards.size());
  EXPECT_EQ(lf.guards[0].var, fn.guards[0].var);
  EXPECT_EQ(lf.guards[0].mutexes, fn.guards[0].mutexes);

  ASSERT_EQ(lf.accesses.size(), fn.accesses.size());
  for (std::size_t i = 0; i < fn.accesses.size(); ++i) {
    EXPECT_EQ(lf.accesses[i].field, fn.accesses[i].field);
    EXPECT_EQ(lf.accesses[i].is_write, fn.accesses[i].is_write);
    EXPECT_EQ(lf.accesses[i].line_index, fn.accesses[i].line_index);
    EXPECT_EQ(lf.accesses[i].held_mutexes, fn.accesses[i].held_mutexes);
  }

  ASSERT_EQ(lf.stmts.size(), fn.stmts.size());
  for (std::size_t i = 0; i < fn.stmts.size(); ++i) {
    EXPECT_EQ(lf.stmts[i].held_mutexes, fn.stmts[i].held_mutexes);
  }
}

// --- doc/CONCURRENCY.md drift gate ------------------------------------------

TEST(DblintConcurrencyDoc, MissingDocIsAFindingUntilGenerated) {
  namespace fs = std::filesystem;
  const std::string root = ::testing::TempDir() + "/dblint-conc-doc";
  fs::remove_all(root);
  fs::create_directories(root + "/src/store");
  std::ofstream(root + "/src/store/c.cpp") << "void f() {}\n";

  auto doc_finding = [](const std::vector<Diagnostic>& diags) {
    return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
      return d.file == "doc/CONCURRENCY.md";
    });
  };

  EXPECT_TRUE(doc_finding(lint_tree(root)));

  // Generating the doc (what `dblint --emit-concurrency` writes) closes it.
  const ConcurrencyAnalysis analysis =
      analyze_concurrency(build_index(read_tree(root)));
  fs::create_directories(root + "/doc");
  std::ofstream(root + "/doc/CONCURRENCY.md") << concurrency_markdown(analysis);
  EXPECT_FALSE(doc_finding(lint_tree(root)));

  // Drift (a stale checked-in doc) reopens it.
  std::ofstream(root + "/doc/CONCURRENCY.md", std::ios::trunc) << "# stale\n";
  EXPECT_TRUE(doc_finding(lint_tree(root)));
}

// --- SARIF rule table ------------------------------------------------------

TEST(DblintSarifConcurrency, NewRulesAreInDriverTable) {
  const std::string sarif = to_sarif({});
  EXPECT_NE(sarif.find("\"id\": \"inconsistent-lockset\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"guard-escape\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"lock-order-cycle\""), std::string::npos);
}

}  // namespace
}  // namespace dblint
