// ShardRouter unit tests: ring determinism and minimal movement under
// resize, routing-table correctness, batch splitting, and the placement
// non-leakage contract (no routing metadata on the wire).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/cloud_node.hpp"
#include "core/sharding.hpp"
#include "core/wire.hpp"
#include "net/channel.hpp"
#include "net/rpc.hpp"
#include "net/shard_router.hpp"

namespace datablinder::net {
namespace {

using doc::Value;

TEST(HashRingTest, DeterministicAcrossInstances) {
  const HashRing a(4), b(4);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "doc/obs/key-" + std::to_string(i);
    EXPECT_EQ(a.shard_of(key), b.shard_of(key));
  }
}

TEST(HashRingTest, SeedChangesPlacement) {
  RingConfig other;
  other.seed = 12345;
  const HashRing a(8), b(8, other);
  int moved = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(i);
    if (a.shard_of(key) != b.shard_of(key)) ++moved;
  }
  // A different seed is a different ring: most keys should relocate.
  EXPECT_GT(moved, 1000);
}

TEST(HashRingTest, SpreadsKeysAcrossAllShards) {
  const HashRing ring(8);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[ring.shard_of("doc/obs/id-" + std::to_string(i))];
  }
  for (int s = 0; s < 8; ++s) {
    // Every shard owns a meaningful slice (expected 1000 +- imbalance).
    EXPECT_GT(counts[s], 300) << "shard " << s << " nearly empty";
  }
}

TEST(HashRingTest, ResizeMovesBoundedFraction) {
  const std::size_t kKeys = 10000;
  const HashRing before(4), after(5);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const std::string key = "doc/obs/key-" + std::to_string(i);
    if (before.shard_of(key) != after.shard_of(key)) ++moved;
  }
  // Consistent hashing: going 4 -> 5 shards should move ~K/5 of the keys;
  // allow 2x slack for virtual-node imbalance. A modulo-partitioner would
  // move ~80% and fail this hard.
  EXPECT_LT(moved, 2 * kKeys / 5);
  EXPECT_GT(moved, 0u);
}

TEST(ShardRouterTest, DocRoutingAgreesWithRing) {
  core::GatewayConfig cfg;
  cfg.shards = 4;
  core::ShardedCloud cloud(cfg);
  ShardRouter* router = cloud.router();
  ASSERT_NE(router, nullptr);
  for (int i = 0; i < 100; ++i) {
    const std::string id = "id-" + std::to_string(i);
    EXPECT_EQ(router->shard_of_doc("obs", id),
              router->ring().shard_of(ShardRouter::doc_key("obs", id)));
  }
}

TEST(ShardRouterTest, PutLandsOnExactlyOneShardWithNoRoutingMetadata) {
  core::GatewayConfig cfg;
  cfg.shards = 4;
  core::ShardedCloud cloud(cfg);

  // Reference: the identical request against a plain single node measures
  // what the wire bytes SHOULD be.
  core::CloudNode ref_node;
  Channel ref_channel;
  RpcClient ref_client(ref_node.rpc(), ref_channel);

  const Bytes payload = core::wire::pack(
      {{"col", Value("obs")}, {"id", Value("doc-42")}, {"blob", Value(Bytes{1, 2, 3})}});
  cloud.client().call("doc.put", payload);
  ref_client.call("doc.put", payload);

  std::size_t shards_touched = 0;
  for (std::size_t s = 0; s < cloud.shard_count(); ++s) {
    const auto sent = cloud.channel(s).stats().bytes_sent.load();
    if (sent == 0) continue;
    ++shards_touched;
    // Placement non-leakage: the one routed request is byte-for-byte the
    // size a single-node deployment would send — no shard index, ring
    // point, or any other routing metadata rides along.
    EXPECT_EQ(sent, ref_channel.stats().bytes_sent.load());
  }
  EXPECT_EQ(shards_touched, 1u);

  // And the document is readable back through the router.
  const Bytes reply = cloud.client().call(
      "doc.get", core::wire::pack({{"col", Value("obs")}, {"id", Value("doc-42")}}));
  EXPECT_EQ(core::wire::get_bin(core::wire::unpack(reply), "blob"), (Bytes{1, 2, 3}));
}

TEST(ShardRouterTest, MgetScattersAndMergesInRequestOrder) {
  core::GatewayConfig cfg;
  cfg.shards = 4;
  core::ShardedCloud cloud(cfg);

  std::vector<std::string> ids;
  std::set<std::size_t> owners;
  for (int i = 0; i < 32; ++i) {
    const std::string id = "m-" + std::to_string(i);
    ids.push_back(id);
    owners.insert(cloud.router()->shard_of_doc("obs", id));
    cloud.client().call("doc.put",
                        core::wire::pack({{"col", Value("obs")},
                                          {"id", Value(id)},
                                          {"blob", Value(Bytes{static_cast<std::uint8_t>(i)})}}));
  }
  ASSERT_GT(owners.size(), 1u) << "test ids all hashed to one shard";

  doc::Array id_arr;
  for (const auto& id : ids) id_arr.emplace_back(id);
  // Ask for the ids interleaved with a vanished one: reply must preserve
  // request order and skip the missing id, exactly like a single node.
  id_arr.insert(id_arr.begin() + 7, Value(std::string("never-inserted")));
  const Bytes reply = cloud.client().call(
      "doc.mget",
      core::wire::pack({{"col", Value("obs")}, {"ids", Value(std::move(id_arr))}}));
  const doc::Object resp = core::wire::unpack(reply);
  const doc::Array& docs = core::wire::get_arr(resp, "docs");
  ASSERT_EQ(docs.size(), ids.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ(docs[i].as_object().at("id").as_string(), ids[i]);
  }
}

TEST(ShardRouterTest, BatchSplitsPerShardAndReassemblesInOrder) {
  core::GatewayConfig cfg;
  cfg.shards = 3;
  core::ShardedCloud cloud(cfg);
  RpcClient& client = cloud.client();

  client.begin_deferred({"doc.put"});
  for (int i = 0; i < 12; ++i) {
    client.call("doc.put",
                core::wire::pack({{"col", Value("obs")},
                                  {"id", Value("b-" + std::to_string(i))},
                                  {"blob", Value(Bytes{static_cast<std::uint8_t>(i)})}}));
  }
  EXPECT_EQ(client.flush_deferred(), 12u);

  for (int i = 0; i < 12; ++i) {
    const Bytes reply = client.call(
        "doc.get", core::wire::pack({{"col", Value("obs")},
                                     {"id", Value("b-" + std::to_string(i))}}));
    EXPECT_EQ(core::wire::get_bin(core::wire::unpack(reply), "blob"),
              Bytes{static_cast<std::uint8_t>(i)});
  }
}

TEST(ShardRouterTest, BroadcastListConcatenatesAllShards) {
  core::GatewayConfig cfg;
  cfg.shards = 4;
  core::ShardedCloud cloud(cfg);
  for (int i = 0; i < 20; ++i) {
    cloud.client().call("doc.put",
                        core::wire::pack({{"col", Value("obs")},
                                          {"id", Value("l-" + std::to_string(i))},
                                          {"blob", Value(Bytes{9})}}));
  }
  const Bytes reply =
      cloud.client().call("doc.list", core::wire::pack({{"col", Value("obs")}}));
  EXPECT_EQ(core::wire::get_arr(core::wire::unpack(reply), "ids").size(), 20u);
}

TEST(ShardRouterTest, UnroutableMethodThrowsProtocolError) {
  core::GatewayConfig cfg;
  cfg.shards = 2;
  core::ShardedCloud cloud(cfg);
  try {
    cloud.client().call("no.such_method", core::wire::pack({}));
    FAIL() << "expected kProtocolError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kProtocolError);
  }
}

TEST(ShardRouterTest, PerShardMetricsAreInstanceLabeled) {
  core::GatewayConfig cfg;
  cfg.shards = 2;
  cfg.replicas = 2;  // replication makes each shard group emit ship events
  core::ShardedCloud cloud(cfg);

  std::map<std::string, std::uint64_t> series;
  cloud.router()->set_metrics_hook(
      [&](const char* name, std::uint64_t v) { series[name] += v; });

  cloud.client().call("doc.put",
                      core::wire::pack({{"col", Value("obs")},
                                        {"id", Value("x")},
                                        {"blob", Value(Bytes{1})}}));

  // Router-level series for the routed single-shard call.
  EXPECT_EQ(series.count("net.shard.route"), 1u);
  // Group-level series keep the aggregate name AND gain exactly one
  // instance-labeled copy from the owning shard — never both shards.
  EXPECT_EQ(series.count("net.replica.ship"), 1u);
  const std::size_t labeled = series.count("net.shard.0.replica.ship") +
                              series.count("net.shard.1.replica.ship");
  EXPECT_EQ(labeled, 1u);
}

}  // namespace
}  // namespace datablinder::net
