// dblint rule tests: every rule (R1–R13, minus the retired R8) must fire on
// a bad fixture, stay quiet on the matching good fixture, honour
// `// dblint:allow(<rule>)` / `// dblint:allow-fn(<rule>)` escapes, and —
// via DBLINT_REPO_ROOT — report the real tree clean. The taint engine,
// facts cache, and SARIF writer are covered here too.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "cache.hpp"
#include "flow.hpp"
#include "index.hpp"
#include "leakage_pass.hpp"
#include "lint.hpp"
#include "sarif.hpp"

namespace dblint {
namespace {

bool has_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

int line_of(const std::vector<Diagnostic>& diags, const std::string& rule) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) return d.line;
  }
  return -1;
}

// --- R1: ct-compare --------------------------------------------------------

TEST(DblintCtCompare, FlagsMemcmp) {
  const std::string bad =
      "bool check(const Bytes& a, const Bytes& b) {\n"
      "  return memcmp(a.data(), b.data(), a.size()) == 0;\n"
      "}\n";
  const auto diags = lint_file("src/core/x.cpp", bad);
  EXPECT_TRUE(has_rule(diags, "ct-compare"));
  EXPECT_EQ(line_of(diags, "ct-compare"), 2);
}

TEST(DblintCtCompare, FlagsEqualityOnSecretNamedBuffer) {
  EXPECT_TRUE(has_rule(lint_file("src/core/x.cpp", "if (auth_tag == expected) fail();\n"),
                       "ct-compare"));
  EXPECT_TRUE(has_rule(lint_file("src/core/x.cpp", "if (computed != mac_) reject();\n"),
                       "ct-compare"));
  EXPECT_TRUE(has_rule(lint_file("src/core/x.cpp",
                                 "bool same = std::equal(t.begin(), t.end(),\n"
                                 "                       search_token.begin());\n"),
                       "ct-compare"));
}

TEST(DblintCtCompare, SizeComparisonAndBenignNamesPass) {
  // .size() on a token buffer is public metadata; `keyword` is not `key`.
  EXPECT_FALSE(has_rule(
      lint_file("src/core/x.cpp", "if (det_token.size() == onion.size()) go();\n"),
      "ct-compare"));
  EXPECT_FALSE(has_rule(lint_file("src/core/x.cpp", "if (keyword == other) go();\n"),
                        "ct-compare"));
  EXPECT_FALSE(has_rule(
      lint_file("src/core/x.cpp", "bool operator==(const Token& o) const = default;\n"),
      "ct-compare"));
}

TEST(DblintCtCompare, AllowEscapeSuppresses) {
  const std::string escaped =
      "if (det_token == label) {  // dblint:allow(ct-compare): public label\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_file("src/core/x.cpp", escaped), "ct-compare"));
  // The marker may also sit on the line above.
  const std::string above =
      "// dblint:allow(ct-compare): public label\n"
      "if (det_token == label) go();\n";
  EXPECT_FALSE(has_rule(lint_file("src/core/x.cpp", above), "ct-compare"));
  // An escape for a DIFFERENT rule does not suppress.
  const std::string wrong_rule =
      "if (det_token == label) {  // dblint:allow(rng): unrelated\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_file("src/core/x.cpp", wrong_rule), "ct-compare"));
}

// --- R2: rng ---------------------------------------------------------------

TEST(DblintRng, FlagsWeakRngInCryptoDirs) {
  for (const char* path : {"src/crypto/x.cpp", "src/kms/x.cpp", "src/ppe/x.cpp",
                           "src/sse/x.cpp", "src/phe/x.cpp"}) {
    EXPECT_TRUE(has_rule(lint_file(path, "DetRng rng(42);\n"), "rng")) << path;
    EXPECT_TRUE(has_rule(lint_file(path, "std::mt19937_64 gen(seed);\n"), "rng")) << path;
    EXPECT_TRUE(has_rule(lint_file(path, "int r = rand();\n"), "rng")) << path;
  }
}

TEST(DblintRng, UnrestrictedDirsAndSecureRngPass) {
  // Simulation/workload directories may use deterministic randomness.
  EXPECT_FALSE(has_rule(lint_file("src/net/channel.cpp", "std::mt19937_64 rng_(s);\n"), "rng"));
  EXPECT_FALSE(has_rule(lint_file("src/workload/loadgen.cpp", "DetRng rng(7);\n"), "rng"));
  EXPECT_FALSE(has_rule(lint_file("src/crypto/x.cpp", "SecureRng rng;\n"), "rng"));
}

TEST(DblintRng, AllowEscapeSuppresses) {
  const std::string escaped =
      "DetRng rng(read_be64(seed));  // dblint:allow(rng): PRF-seeded permutation\n";
  EXPECT_FALSE(has_rule(lint_file("src/ppe/x.cpp", escaped), "rng"));
}

TEST(DblintRng, CommentMentionsDoNotFire) {
  EXPECT_FALSE(has_rule(lint_file("src/crypto/x.cpp", "// never use rand() here\n"), "rng"));
  EXPECT_FALSE(
      has_rule(lint_file("src/crypto/x.cpp", "const char* s = \"mt19937\";\n"), "rng"));
}

// --- R3: expose ------------------------------------------------------------

TEST(DblintExpose, FlagsOutsideKernel) {
  const std::string bad = "Bytes raw(key.expose_secret().begin(), key.expose_secret().end());\n";
  EXPECT_TRUE(has_rule(lint_file("src/core/gateway.cpp", bad), "expose"));
  EXPECT_TRUE(has_rule(lint_file("src/workload/scenarios.cpp", bad), "expose"));
  EXPECT_TRUE(has_rule(lint_file("tests/gateway_test.cpp", bad), "expose"));
  // Headers are not kernel files even inside crypto dirs: unwrapping
  // belongs in translation units.
  EXPECT_TRUE(has_rule(lint_file("src/ppe/det.hpp", bad), "expose"));
}

TEST(DblintExpose, KernelAllowlistPasses) {
  const std::string unwrap = "return prf(key.expose_secret(), input);\n";
  for (const char* path :
       {"src/crypto/prf.cpp", "src/crypto/aes.cpp",
        "src/ppe/ope.cpp", "src/sse/mitra.cpp", "src/phe/paillier.cpp",
        "src/common/secret.cpp"}) {
    EXPECT_FALSE(has_rule(lint_file(path, unwrap), "expose")) << path;
  }
  // The PR-8 audit shrank the allowlist: kms/ and onion/ are no longer
  // blanket-exempt — their reviewed unwraps carry inline escapes instead.
  for (const char* path : {"src/kms/key_manager.cpp", "src/onion/onion.cpp"}) {
    EXPECT_TRUE(has_rule(lint_file(path, unwrap), "expose")) << path;
  }
}

TEST(DblintExpose, AllowEscapeSuppresses) {
  const std::string escaped =
      "auto v = key.expose_secret();  // dblint:allow(expose): reviewed disclosure\n";
  EXPECT_FALSE(has_rule(lint_file("src/core/gateway.cpp", escaped), "expose"));
}

// --- R10: secret-cache -----------------------------------------------------

TEST(DblintSecretCache, FlagsSecretFlowingIntoCacheContainer) {
  // An ordinary map keeps the plaintext alive after "deletion": no wipe.
  const std::string bad =
      "void remember(const SecretBytes& key) {\n"
      "  label_cache[scope] = Bytes(key.expose_secret().begin(),\n"
      "                             key.expose_secret().end());\n"
      "}\n";
  // Kernel files may expose, but caching the product is still R10.
  const auto diags = lint_file("src/sse/mitra.cpp", bad);
  EXPECT_FALSE(has_rule(diags, "expose"));  // kernel allowlist covers R3
  EXPECT_TRUE(has_rule(diags, "secret-cache"));
  EXPECT_EQ(line_of(diags, "secret-cache"), 2);
  EXPECT_TRUE(has_rule(
      lint_file("src/ppe/det.cpp",
                "trapdoor_cache.emplace(kw, token.expose_secret());\n"),
      "secret-cache"));
}

TEST(DblintSecretCache, HotCacheAndUnrelatedStatementsPass) {
  // The HotCache implementation is the single sanctioned unwrap point.
  EXPECT_FALSE(has_rule(
      lint_file("src/core/hot_cache.cpp",
                "const BytesView v = it->second.value.expose_secret();\n"),
      "secret-cache"));
  // expose without a cache container, and caches without secrets, pass.
  EXPECT_FALSE(has_rule(
      lint_file("src/crypto/prf.cpp", "return prf(key.expose_secret(), in);\n"),
      "secret-cache"));
  EXPECT_FALSE(has_rule(
      lint_file("src/core/x.cpp", "score_cache[v] = public_score(v);\n"),
      "secret-cache"));
}

TEST(DblintSecretCache, AllowEscapeSuppresses) {
  const std::string escaped =
      "mont_cache[n] = ctx.expose_secret();  "
      "// dblint:allow(secret-cache): public modulus context\n";
  EXPECT_FALSE(has_rule(lint_file("src/phe/paillier.cpp", escaped), "secret-cache"));
}

// --- R4: log-secret --------------------------------------------------------

TEST(DblintLogSecret, FlagsSecretsInLogStatements) {
  EXPECT_TRUE(has_rule(
      lint_file("src/core/x.cpp", "DB_LOG_INFO << \"key: \" << master_key;\n"), "log-secret"));
  EXPECT_TRUE(has_rule(
      lint_file("src/core/x.cpp", "log_line(LogLevel::kDebug, to_hex(prk));\n"), "log-secret"));
  // Multi-line statements are scanned to the terminating ';'.
  const std::string multiline =
      "DB_LOG_WARN << \"rotating scope \" << scope\n"
      "            << \" old=\" << old_secret;\n";
  const auto diags = lint_file("src/core/x.cpp", multiline);
  EXPECT_TRUE(has_rule(diags, "log-secret"));
  EXPECT_EQ(line_of(diags, "log-secret"), 1);  // reported at the DB_LOG line
  EXPECT_TRUE(has_rule(
      lint_file("src/core/x.cpp", "DB_LOG_DEBUG << k.expose_secret().size();\n"),
      "log-secret"));
}

TEST(DblintLogSecret, BenignLogsPass) {
  EXPECT_FALSE(has_rule(
      lint_file("src/core/x.cpp",
                "DB_LOG_INFO << \"policy: \" << s.name() << \".\" << field;\n"),
      "log-secret"));
  EXPECT_FALSE(has_rule(
      lint_file("src/core/x.cpp", "DB_LOG_DEBUG << \"keyword \" << keyword;\n"), "log-secret"));
}

TEST(DblintLogSecret, AllowEscapeSuppresses) {
  const std::string escaped =
      "DB_LOG_DEBUG << fingerprint_of(key);  // dblint:allow(log-secret): hashed\n";
  EXPECT_FALSE(has_rule(lint_file("src/core/x.cpp", escaped), "log-secret"));
}

// --- R5: layering ----------------------------------------------------------

std::vector<FileInput> with_common_header(FileInput f) {
  return {std::move(f), {"src/common/bytes.hpp", "#pragma once\n"}};
}

TEST(DblintLayering, CommonMustNotIncludeCore) {
  const auto diags = lint_include_graph(
      with_common_header({"src/common/util.hpp", "#include \"core/gateway.hpp\"\n"}));
  ASSERT_TRUE(has_rule(diags, "layering"));
  EXPECT_EQ(line_of(diags, "layering"), 1);
}

TEST(DblintLayering, LowerLayersMustNotReachUp) {
  EXPECT_TRUE(has_rule(
      lint_include_graph({{"src/crypto/aes.cpp", "#include \"kms/key_manager.hpp\"\n"}}),
      "layering"));
  EXPECT_TRUE(has_rule(
      lint_include_graph({{"src/sse/mitra.cpp", "#include \"core/policy.hpp\"\n"}}),
      "layering"));
}

TEST(DblintLayering, TacticsMustUseSchemeSurfacesNotCrypto) {
  const auto diags = lint_include_graph(
      {{"src/core/tactics/det_tactic.cpp", "#include \"crypto/gcm.hpp\"\n"}});
  ASSERT_TRUE(has_rule(diags, "layering"));
  // Non-tactics core code MAY include crypto (e.g. the exec runtime).
  EXPECT_FALSE(has_rule(
      lint_include_graph({{"src/core/exec/runtime.hpp", "#include \"crypto/gcm.hpp\"\n"}}),
      "layering"));
}

TEST(DblintLayering, DownwardIncludesPass) {
  EXPECT_FALSE(has_rule(
      lint_include_graph({{"src/core/gateway.cpp",
                           "#include \"common/bytes.hpp\"\n#include \"sse/mitra.hpp\"\n"}}),
      "layering"));
  EXPECT_FALSE(has_rule(
      lint_include_graph({{"src/sse/mitra.cpp", "#include \"crypto/prf.hpp\"\n"}}),
      "layering"));
}

TEST(DblintLayering, DetectsIncludeCycles) {
  const auto diags = lint_include_graph({
      {"src/sse/a.hpp", "#include \"sse/b.hpp\"\n"},
      {"src/sse/b.hpp", "#include \"sse/a.hpp\"\n"},
  });
  ASSERT_TRUE(has_rule(diags, "layering"));
  bool mentions_cycle = false;
  for (const auto& d : diags) {
    if (d.message.find("cycle") != std::string::npos) mentions_cycle = true;
  }
  EXPECT_TRUE(mentions_cycle);
}

TEST(DblintLayering, AllowEscapeSuppresses) {
  const auto diags = lint_include_graph(
      {{"src/common/util.hpp",
        "#include \"core/gateway.hpp\"  // dblint:allow(layering): transitional\n"}});
  EXPECT_FALSE(has_rule(diags, "layering"));
}

// --- R6: unchecked-status --------------------------------------------------

// The Status signature can come from any file in the indexed set, the way
// src/common/status.hpp declares it for the real tree.
const FileInput kStatusHeader{"src/store/s.hpp",
                              "Status sync();\nResult<int> fetch();\n"};

TEST(DblintUncheckedStatus, FlagsDiscardedStatementCall) {
  const auto diags =
      lint_indexed({kStatusHeader, {"src/store/s.cpp", "void f() {\n  sync();\n}\n"}});
  ASSERT_TRUE(has_rule(diags, "unchecked-status"));
  EXPECT_EQ(line_of(diags, "unchecked-status"), 2);
}

TEST(DblintUncheckedStatus, FlagsMemberChainAndBranchBodyDiscards) {
  EXPECT_TRUE(has_rule(
      lint_indexed({kStatusHeader,
                    {"src/store/s.cpp", "void f() {\n  store_.sync();\n}\n"}}),
      "unchecked-status"));
  // `if (x) chain.f();` is still a discard.
  EXPECT_TRUE(has_rule(
      lint_indexed({kStatusHeader,
                    {"src/store/s.cpp", "void f() {\n  if (dirty) sync();\n}\n"}}),
      "unchecked-status"));
  // Result<T> counts too.
  EXPECT_TRUE(has_rule(
      lint_indexed({kStatusHeader,
                    {"src/store/s.cpp", "void f() {\n  fetch();\n}\n"}}),
      "unchecked-status"));
}

TEST(DblintUncheckedStatus, ConsumedResultsPass) {
  for (const char* body : {
           "void f() {\n  Status s = sync();\n  (void)s;\n}\n",
           "void f() {\n  sync().throw_if_error();\n}\n",
           "bool f() {\n  return sync().ok();\n}\n",
           "void f() {\n  if (!sync().ok()) retry();\n}\n",
       }) {
    EXPECT_FALSE(has_rule(lint_indexed({kStatusHeader, {"src/store/s.cpp", body}}),
                          "unchecked-status"))
        << body;
  }
  // Non-Status callees discard freely.
  EXPECT_FALSE(has_rule(
      lint_indexed({kStatusHeader, {"src/store/s.cpp", "void f() {\n  log();\n}\n"}}),
      "unchecked-status"));
}

TEST(DblintUncheckedStatus, VoidCastAndAllowEscapeMarkDeliberateDiscards) {
  EXPECT_FALSE(has_rule(
      lint_indexed({kStatusHeader,
                    {"src/store/s.cpp",
                     "void f() {\n  // completion loss only replays\n  (void)sync();\n}\n"}}),
      "unchecked-status"));
  EXPECT_FALSE(has_rule(
      lint_indexed(
          {kStatusHeader,
           {"src/store/s.cpp",
            "void f() {\n  sync();  // dblint:allow(unchecked-status): fire-and-forget\n}\n"}}),
      "unchecked-status"));
}

// --- R7: lock-discipline ---------------------------------------------------

TEST(DblintLockDiscipline, FlagsRawLockAndUnlock) {
  const auto diags = lint_indexed(
      {{"src/store/a.cpp",
        "void KvStore::f() {\n  mutex_.lock();\n  work();\n  mutex_.unlock();\n}\n"}});
  ASSERT_TRUE(has_rule(diags, "lock-discipline"));
  EXPECT_EQ(line_of(diags, "lock-discipline"), 2);
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/store/a.cpp", "void f() {\n  mu_->try_lock();\n}\n"}}),
      "lock-discipline"));
}

TEST(DblintLockDiscipline, RaiiGuardsPass) {
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/store/a.cpp",
                     "void KvStore::f() {\n  std::lock_guard<std::mutex> lock(mutex_);\n"
                     "  work();\n}\n"}}),
      "lock-discipline"));
}

TEST(DblintLockDiscipline, ReportsLockOrderCycle) {
  const auto diags = lint_indexed(
      {{"src/store/a.cpp",
        "void Store::f() {\n"
        "  std::lock_guard<std::mutex> g1(a_);\n"
        "  std::lock_guard<std::mutex> g2(b_);\n"
        "}\n"
        "void Store::g() {\n"
        "  std::lock_guard<std::mutex> g1(b_);\n"
        "  std::lock_guard<std::mutex> g2(a_);\n"
        "}\n"}});
  ASSERT_TRUE(has_rule(diags, "lock-discipline"));
  bool mentions_cycle = false;
  for (const auto& d : diags) {
    if (d.message.find("lock-order cycle") != std::string::npos) mentions_cycle = true;
  }
  EXPECT_TRUE(mentions_cycle);
}

TEST(DblintLockDiscipline, ConsistentOrderAndScopedScopesPass) {
  // Same order everywhere: no cycle.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/store/a.cpp",
                     "void Store::f() {\n"
                     "  std::lock_guard<std::mutex> g1(a_);\n"
                     "  std::lock_guard<std::mutex> g2(b_);\n"
                     "}\n"
                     "void Store::g() {\n"
                     "  std::lock_guard<std::mutex> g1(a_);\n"
                     "  std::lock_guard<std::mutex> g2(b_);\n"
                     "}\n"}}),
      "lock-discipline"));
  // Sequential (non-nested) scopes impose no order.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/store/a.cpp",
                     "void Store::f() {\n"
                     "  { std::lock_guard<std::mutex> g(a_); }\n"
                     "  { std::lock_guard<std::mutex> g(b_); }\n"
                     "}\n"
                     "void Store::g() {\n"
                     "  { std::lock_guard<std::mutex> g(b_); }\n"
                     "  { std::lock_guard<std::mutex> g(a_); }\n"
                     "}\n"}}),
      "lock-discipline"));
}

TEST(DblintLockDiscipline, MemberMutexesAreClassQualified) {
  // Two classes both nest `mutex_` against the same global — opposite
  // textual order, but distinct nodes once qualified: no cycle.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/store/a.cpp",
                     "void KvStore::f() {\n"
                     "  std::lock_guard<std::mutex> g(mutex_);\n"
                     "  std::lock_guard<std::mutex> h(g_mu);\n"
                     "}\n"},
                    {"src/doc/b.cpp",
                     "void DocStore::f() {\n"
                     "  std::lock_guard<std::mutex> g(g_mu);\n"
                     "  std::lock_guard<std::mutex> h(mutex_);\n"
                     "}\n"}}),
      "lock-discipline"));
}

TEST(DblintLockDiscipline, AllowEscapeSuppresses) {
  EXPECT_FALSE(has_rule(
      lint_indexed(
          {{"src/store/a.cpp",
            "void f() {\n  mu_.lock();  // dblint:allow(lock-discipline): handoff\n}\n"}}),
      "lock-discipline"));
}

// --- R11: secret-egress (interprocedural taint) ----------------------------

TEST(DblintSecretEgress, FlagsPlaintextAccessorAtEgress) {
  const auto diags = lint_indexed(
      {{"src/core/gateway.cpp",
        "void Gateway::f(const Value& v) {\n"
        "  cloud_.call(m, v.as_string());\n"
        "}\n"}});
  ASSERT_TRUE(has_rule(diags, "secret-egress"));
  EXPECT_EQ(line_of(diags, "secret-egress"), 2);
}

TEST(DblintSecretEgress, FlagsExposedSecretThroughLocal) {
  const auto diags = lint_indexed(
      {{"src/core/gateway.cpp",
        "void Gateway::f(const SecretBytes& key) {\n"
        "  const Bytes raw(key.expose_secret());\n"
        "  chan_.send_batch(raw);\n"
        "}\n"}});
  ASSERT_TRUE(has_rule(diags, "secret-egress"));
  EXPECT_EQ(line_of(diags, "secret-egress"), 3);
  // The trace walks source -> sink.
  for (const auto& d : diags) {
    if (d.rule != "secret-egress") continue;
    ASSERT_GE(d.trace.size(), 2u);
    EXPECT_NE(d.trace.front().note.find("expose_secret"), std::string::npos);
    EXPECT_NE(d.trace.back().note.find("send_batch"), std::string::npos);
  }
}

TEST(DblintSecretEgress, FlagsTaintedLogEntryConstruction) {
  // Writing plaintext into a replica LogEntry is egress: the log replays to
  // every cloud replica.
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/net/replica_group.cpp",
                     "void G::f(const Value& v) {\n"
                     "  LogEntry entry = make_entry(v.as_string());\n"
                     "}\n"}}),
      "secret-egress"));
  // log_line is an egress sink for R11 too.
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/core/gateway.cpp",
                     "void G::f(const SecretBytes& k) {\n"
                     "  log_.log_line(kDebug, k.expose_secret());\n"
                     "}\n"}}),
      "secret-egress"));
}

TEST(DblintSecretEgress, CatchesCrossFunctionLeakWithFullTrace) {
  // The planted leak: a secret crosses TWO translation units through a
  // helper before hitting the wire. The trace must show every hop.
  const auto diags = lint_indexed(
      {{"src/core/helpers.cpp",
        "Bytes reveal(const SecretBytes& key) {\n"
        "  return Bytes(key.expose_secret());\n"
        "}\n"},
       {"src/core/shipper.cpp",
        "void Shipper::ship(const SecretBytes& key) {\n"
        "  chan_.send_batch(reveal(key));\n"
        "}\n"}});
  ASSERT_TRUE(has_rule(diags, "secret-egress"));
  bool traced = false;
  for (const auto& d : diags) {
    if (d.rule != "secret-egress" || d.file != "src/core/shipper.cpp") continue;
    ASSERT_GE(d.trace.size(), 3u);
    bool has_source = false, has_hop = false, has_sink = false;
    for (const auto& step : d.trace) {
      if (step.file == "src/core/helpers.cpp" &&
          step.note.find("expose_secret") != std::string::npos) {
        has_source = true;
      }
      if (step.note.find("reveal") != std::string::npos) has_hop = true;
      if (step.note.find("send_batch") != std::string::npos) has_sink = true;
    }
    EXPECT_TRUE(has_source) << format(d);
    EXPECT_TRUE(has_hop) << format(d);
    EXPECT_TRUE(has_sink) << format(d);
    traced = true;
  }
  EXPECT_TRUE(traced);
}

TEST(DblintSecretEgress, SanitizedAndLaunderedFlowsPass) {
  // An inline crypto-kernel sanitizer cleanses in the same statement.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/core/gateway.cpp",
                     "void G::f(const Value& v) {\n"
                     "  cloud_.call(m, encrypt_value(key_, v.as_string()));\n"
                     "}\n"}}),
      "secret-egress"));
  // Summary-driven laundering: the callee PRFs its argument internally, so
  // the engine proves the plaintext never reaches the wire raw.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/sse/labels.cpp",
                     "Bytes seal_label(const Bytes& kw) {\n"
                     "  return prf_labeled(key_, kw);\n"
                     "}\n"},
                    {"src/core/gateway.cpp",
                     "void G::put(const Value& v) {\n"
                     "  cloud_.call(m, seal_label(v.as_string()));\n"
                     "}\n"}}),
      "secret-egress"));
  // Sealed identifiers with no taint source pass.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/core/gateway.cpp",
                     "void G::f() {\n  cloud_.call(m, sealed_blob_);\n}\n"}}),
      "secret-egress"));
}

TEST(DblintSecretEgress, WorkloadIsOutOfScopeAndEscapesSuppress) {
  const std::string body =
      "void f(const Value& v) {\n  cloud_.call(m, v.as_string());\n}\n";
  EXPECT_FALSE(has_rule(lint_indexed({{"src/workload/scenarios.cpp", body}}),
                        "secret-egress"));
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/core/gateway.cpp",
                     "void f(const Value& v) {\n"
                     "  // dblint:allow(secret-egress): public routing key\n"
                     "  cloud_.call(m, v.as_string());\n}\n"}}),
      "secret-egress"));
  // allow-fn on the signature covers the whole body.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/core/gateway.cpp",
                     "// dblint:allow-fn(secret-egress): modelled disclosure\n"
                     "void f(const Value& v) {\n"
                     "  cloud_.call(m, v.as_string());\n}\n"}}),
      "secret-egress"));
}

// --- R12: wipe-on-all-paths ------------------------------------------------

TEST(DblintWipeOnAllPaths, FlagsNeverWipedRawCopy) {
  const auto diags = lint_indexed(
      {{"src/crypto/kernel.cpp",
        "void f(const SecretBytes& k) {\n"
        "  Bytes raw(k.expose_secret());\n"
        "  use(raw);\n"
        "}\n"}});
  ASSERT_TRUE(has_rule(diags, "wipe-on-all-paths"));
  EXPECT_EQ(line_of(diags, "wipe-on-all-paths"), 2);
}

TEST(DblintWipeOnAllPaths, FlagsEarlyReturnBeforeWipe) {
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/crypto/kernel.cpp",
                     "Bytes f(const SecretBytes& k) {\n"
                     "  std::string tmp(k.expose_secret().begin(), k.expose_secret().end());\n"
                     "  if (!valid_) return {};\n"
                     "  secure_wipe(tmp);\n"
                     "  return out_;\n"
                     "}\n"}}),
      "wipe-on-all-paths"));
}

TEST(DblintWipeOnAllPaths, FlagsThrowPathBeforeWipe) {
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/crypto/kernel.cpp",
                     "void f(const SecretBytes& k) {\n"
                     "  Bytes raw(k.expose_secret());\n"
                     "  if (bad_) throw_error(ErrorCode::kInternal, \"x\");\n"
                     "  secure_wipe(raw);\n"
                     "}\n"}}),
      "wipe-on-all-paths"));
}

TEST(DblintWipeOnAllPaths, WipedAndAdoptedCopiesPass) {
  // secure_wipe before the only exit.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/crypto/kernel.cpp",
                     "void f(const SecretBytes& k) {\n"
                     "  Bytes raw(k.expose_secret());\n"
                     "  use(raw);\n"
                     "  secure_wipe(raw);\n"
                     "}\n"}}),
      "wipe-on-all-paths"));
  // Adoption into SecretBytes wipes the source buffer.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/crypto/kernel.cpp",
                     "void f(const SecretBytes& k) {\n"
                     "  Bytes raw(k.expose_secret());\n"
                     "  SecretBytes owned(raw);\n"
                     "}\n"}}),
      "wipe-on-all-paths"));
  // Non-owning views and non-secret buffers are out of scope.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/crypto/kernel.cpp",
                     "void f(const SecretBytes& k) {\n"
                     "  BytesView v = k.expose_secret();\n"
                     "  Bytes plain = to_bytes(label);\n"
                     "}\n"}}),
      "wipe-on-all-paths"));
}

TEST(DblintWipeOnAllPaths, AllowEscapeSuppresses) {
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/crypto/kernel.cpp",
                     "void f(const SecretBytes& k) {\n"
                     "  // dblint:allow(wipe-on-all-paths): caller wipes\n"
                     "  Bytes raw(k.expose_secret());\n"
                     "}\n"}}),
      "wipe-on-all-paths"));
}

// --- R13: lock-held-egress -------------------------------------------------

TEST(DblintLockHeldEgress, FlagsDirectEgressUnderLock) {
  const auto diags = lint_indexed(
      {{"src/net/pool.cpp",
        "void Pool::f() {\n"
        "  std::lock_guard<std::mutex> lock(mu_);\n"
        "  chan_.call(m, wire_);\n"
        "}\n"}});
  ASSERT_TRUE(has_rule(diags, "lock-held-egress"));
  EXPECT_EQ(line_of(diags, "lock-held-egress"), 3);
}

TEST(DblintLockHeldEgress, FlagsSendBatchUnderScopedLock) {
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/net/pool.cpp",
                     "void Pool::f() {\n"
                     "  std::scoped_lock guard(mu_);\n"
                     "  chan_.send_batch(buf_);\n"
                     "}\n"}}),
      "lock-held-egress"));
}

TEST(DblintLockHeldEgress, FlagsTransitiveEgressThroughCallee) {
  const auto diags = lint_indexed(
      {{"src/net/pool.cpp",
        "void Pool::flush() {\n"
        "  chan_.send_batch(buf_);\n"
        "}\n"
        "void Pool::tick() {\n"
        "  std::lock_guard<std::mutex> g(mu_);\n"
        "  flush();\n"
        "}\n"}});
  ASSERT_TRUE(has_rule(diags, "lock-held-egress"));
  EXPECT_EQ(line_of(diags, "lock-held-egress"), 6);
  for (const auto& d : diags) {
    if (d.rule != "lock-held-egress") continue;
    // The trace continues into the callee's own egress site.
    ASSERT_GE(d.trace.size(), 2u);
    EXPECT_NE(d.trace.back().note.find("send_batch"), std::string::npos);
  }
}

TEST(DblintLockHeldEgress, EgressOutsideGuardScopePasses) {
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/net/pool.cpp",
                     "void Pool::f() {\n"
                     "  {\n"
                     "    std::lock_guard<std::mutex> g(mu_);\n"
                     "    buf_ = prep();\n"
                     "  }\n"
                     "  chan_.call(m, buf_);\n"
                     "}\n"}}),
      "lock-held-egress"));
}

TEST(DblintLockHeldEgress, WorkloadIsOutOfScope) {
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/workload/driver.cpp",
                     "void D::f() {\n"
                     "  std::lock_guard<std::mutex> g(mu_);\n"
                     "  chan_.call(m, wire_);\n"
                     "}\n"}}),
      "lock-held-egress"));
}

TEST(DblintLockHeldEgress, AllowFnEscapeSuppressesWholeBody) {
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/net/pool.cpp",
                     "// dblint:allow-fn(lock-held-egress): in-process replay\n"
                     "void Pool::f() {\n"
                     "  std::lock_guard<std::mutex> g(mu_);\n"
                     "  chan_.call(m, a_);\n"
                     "  chan_.call(m, b_);\n"
                     "}\n"}}),
      "lock-held-egress"));
}

// --- Call graph and function summaries -------------------------------------

TEST(DblintFlowSummaries, CrossTuSummariesCompose) {
  const RepoIndex index = build_index(
      {{"src/core/helpers.cpp",
        "Bytes reveal(const SecretBytes& key) {\n"
        "  return Bytes(key.expose_secret());\n"
        "}\n"},
       {"src/core/shipper.cpp",
        "void Shipper::ship(const Chan& chan, const SecretBytes& key) {\n"
        "  chan_.send_batch(reveal(key));\n"
        "}\n"}});
  const auto summaries = flow_summaries(index);
  const FlowSummary* reveal = nullptr;
  const FlowSummary* ship = nullptr;
  for (const auto& s : summaries) {
    if (s.qualified == "reveal") reveal = &s;
    if (s.qualified == "Shipper::ship") ship = &s;
  }
  ASSERT_NE(reveal, nullptr);
  ASSERT_NE(ship, nullptr);
  EXPECT_TRUE(reveal->returns_secret);
  EXPECT_TRUE(reveal->params_to_return.count(0) > 0);
  EXPECT_FALSE(reveal->reaches_egress);
  EXPECT_TRUE(ship->reaches_egress);
  // key (param 1) flows into the sink via reveal's summary.
  EXPECT_TRUE(ship->params_to_sink.count(1) > 0);
}

TEST(DblintFlowSummaries, SanitizerLaundersParamInSummary) {
  const RepoIndex index = build_index(
      {{"src/sse/labels.cpp",
        "Bytes seal_label(const Bytes& kw) {\n"
        "  return prf_labeled(key_, kw);\n"
        "}\n"}});
  const auto summaries = flow_summaries(index);
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_FALSE(summaries[0].returns_secret);
  EXPECT_TRUE(summaries[0].params_to_return.empty());
  EXPECT_TRUE(summaries[0].params_to_sink.empty());
}

TEST(DblintFlowSummaries, SanctionedFlowsAreInventoried) {
  const RepoIndex index = build_index(
      {{"src/core/gateway.cpp",
        "void G::put(const Value& v) {\n"
        "  cloud_.call(m, encrypt_value(key_, v.as_string()));\n"
        "}\n"}});
  const FlowAnalysis analysis = analyze_flows(index);
  EXPECT_TRUE(analysis.diagnostics.empty());
  bool found = false;
  for (const auto& f : analysis.sanctioned) {
    if (f.function == "G::put" && f.sanitizer == "encrypt_value") found = true;
  }
  EXPECT_TRUE(found);
  // The markdown table is deterministic and row-per-flow.
  const std::string md = secret_flows_markdown(analysis.sanctioned);
  EXPECT_NE(md.find("| File | Function | Sanitizer | Source |"), std::string::npos);
  EXPECT_NE(md.find("G::put"), std::string::npos);
}

// --- R9: leakage-conformance -----------------------------------------------

std::string tactic_src(const std::string& cls, const std::string& op,
                       const std::string& leak) {
  return "TacticDescriptor t;\n"
         "t.name = \"FIX\";\n"
         "t.protection_class = schema::ProtectionClass::" + cls + ";\n"
         "t.operations = {\n"
         "    {TacticOperation::" + op + ", {LeakageLevel::" + leak + ", \"O(1)\", 1}},\n"
         "};\n";
}

TEST(DblintLeakage, FlagsQueryLeakageAboveClassCeiling) {
  // A Class2 (identifiers) tactic whose search leaks equalities is
  // mis-registered — the same fixture the runtime registry test rejects.
  const auto diags = lint_leakage_conformance(
      {{"src/core/tactics/evil_tactic.cpp",
        tactic_src("kClass2", "kEqualitySearch", "kEqualities")}});
  ASSERT_TRUE(has_rule(diags, "leakage-conformance"));
  EXPECT_EQ(line_of(diags, "leakage-conformance"), 5);  // the declaring row
}

TEST(DblintLeakage, CeilingRespectsOperationFamilies) {
  // Query ops are bounded exactly by the class rung.
  EXPECT_FALSE(has_rule(
      lint_leakage_conformance({{"src/core/tactics/a_tactic.cpp",
                                 tactic_src("kClass2", "kEqualitySearch", "kIdentifiers")}}),
      "leakage-conformance"));
  // Update-pattern equality leakage is tolerated for Class2..4 (the
  // stateless-Mitra shape) but not for Class1 (forward privacy).
  EXPECT_FALSE(has_rule(
      lint_leakage_conformance({{"src/core/tactics/a_tactic.cpp",
                                 tactic_src("kClass2", "kInsert", "kEqualities")}}),
      "leakage-conformance"));
  EXPECT_TRUE(has_rule(
      lint_leakage_conformance({{"src/core/tactics/a_tactic.cpp",
                                 tactic_src("kClass1", "kInsert", "kEqualities")}}),
      "leakage-conformance"));
  // Init may never reveal more than structure, for any class.
  EXPECT_TRUE(has_rule(
      lint_leakage_conformance({{"src/core/tactics/a_tactic.cpp",
                                 tactic_src("kClass5", "kInit", "kIdentifiers")}}),
      "leakage-conformance"));
}

TEST(DblintLeakage, MissingDescriptorTableIsItselfAFinding) {
  EXPECT_TRUE(has_rule(
      lint_leakage_conformance({{"src/core/tactics/empty_tactic.cpp", "void f() {}\n"}}),
      "leakage-conformance"));
  // Only *_tactic.cpp files are in scope.
  EXPECT_FALSE(has_rule(
      lint_leakage_conformance({{"src/core/exec/plan.cpp", "void f() {}\n"}}),
      "leakage-conformance"));
}

TEST(DblintLeakage, AllowEscapeSuppresses) {
  std::string src = tactic_src("kClass2", "kEqualitySearch", "kEqualities");
  const std::string row = "{TacticOperation::kEqualitySearch,";
  src.replace(src.find(row), row.size(),
              "// dblint:allow(leakage-conformance): reviewed exception\n    " + row);
  EXPECT_FALSE(has_rule(
      lint_leakage_conformance({{"src/core/tactics/evil_tactic.cpp", src}}),
      "leakage-conformance"));
}

TEST(DblintLeakage, MatrixIsDeterministicAndCeilingDriven) {
  const std::vector<FileInput> files = {
      {"src/core/tactics/a_tactic.cpp",
       tactic_src("kClass2", "kEqualitySearch", "kIdentifiers")}};
  const std::string a = leakage_matrix_markdown(files);
  EXPECT_EQ(a, leakage_matrix_markdown(files));
  // One ceiling row straight out of schema::leakage_ceiling.
  EXPECT_NE(a.find("| equality_search | Structure | Identifiers | Predicates | "
                   "Equalities | Order |"),
            std::string::npos);
  // The declared profile, with its ceiling alongside.
  EXPECT_NE(a.find("| FIX | Class2 | equality_search | Identifiers | Identifiers |"),
            std::string::npos);
}

// --- Tokenizer: raw strings and line continuations -------------------------

TEST(DblintTokenizer, RawStringContentsDoNotFireRules) {
  // Without raw-literal handling the `)"` would desynchronize the string
  // state machine and the literal's body would be scanned as code.
  EXPECT_FALSE(has_rule(
      lint_file("src/crypto/x.cpp",
                "const char* doc = R\"(never call rand() or mt19937 here)\";\n"
                "SecureRng rng;\n"),
      "rng"));
  // Delimited form.
  EXPECT_FALSE(has_rule(
      lint_file("src/crypto/x.cpp",
                "const char* doc = R\"ml(seed = rand();)ml\";\n"),
      "rng"));
  // Code AFTER the closing delimiter is still scanned.
  EXPECT_TRUE(has_rule(
      lint_file("src/crypto/x.cpp",
                "const char* doc = R\"(text)\"; int r = rand();\n"),
      "rng"));
}

TEST(DblintTokenizer, BackslashContinuationExtendsLineComments) {
  // The preprocessor splices the next physical line into the comment; the
  // tokenizer must agree or the spliced line is scanned as code.
  EXPECT_FALSE(has_rule(lint_file("src/crypto/x.cpp",
                                  "// seed once \\\n"
                                  "rand();\n"),
                        "rng"));
  // Without the backslash the second line is real code.
  EXPECT_TRUE(has_rule(lint_file("src/crypto/x.cpp",
                                 "// seed once\n"
                                 "int r = rand();\n"),
                       "rng"));
}

// --- SARIF output ----------------------------------------------------------

TEST(DblintSarif, EmitsSchemaRulesAndResults) {
  Diagnostic d{"src/core/x.cpp", 7, "secret-egress", "plaintext reaches 'call'"};
  d.trace = {{"src/core/y.cpp", 3, "plaintext accessor"},
             {"src/core/x.cpp", 7, "reaches egress"}};
  const std::string sarif = to_sarif({d});
  EXPECT_NE(sarif.find("\"$schema\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"dblint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"secret-egress\""), std::string::npos);
  // The flow trace is exported as a codeFlow for code-scanning UIs.
  EXPECT_NE(sarif.find("\"codeFlows\""), std::string::npos);
  EXPECT_NE(sarif.find("plaintext accessor"), std::string::npos);
  // Every rule is declared in the driver table even with one result.
  EXPECT_NE(sarif.find("\"id\": \"ct-compare\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"lock-held-egress\""), std::string::npos);
}

TEST(DblintSarif, EmptyRunIsStillValid) {
  const std::string sarif = to_sarif({});
  EXPECT_NE(sarif.find("\"results\": ["), std::string::npos);
  EXPECT_EQ(sarif.find("\"ruleId\""), std::string::npos);  // no result objects
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
}

// --- Facts cache -----------------------------------------------------------

TEST(DblintCache, RoundTripsFileFacts) {
  const std::string path = "src/store/s.cpp";
  const std::string content =
      "// dblint:allow(rng): fixture\n"
      "Status KvStore::sync(int retries) {\n"
      "  std::lock_guard<std::mutex> lock(mutex_);\n"
      "  Status s = flush(retries);\n"
      "  return s;\n"
      "}\n"
      "#include \"common/bytes.hpp\"\n";
  const FileFacts facts = compute_file_facts(path, content);
  const std::string dir = ::testing::TempDir() + "/dblint-cache-rt";
  store_file_facts(dir, path, fnv1a64(content), facts);

  FileFacts loaded;
  ASSERT_TRUE(load_file_facts(dir, path, fnv1a64(content), &loaded));
  EXPECT_EQ(loaded.path, facts.path);
  EXPECT_EQ(loaded.status_names, facts.status_names);
  ASSERT_EQ(loaded.includes.size(), facts.includes.size());
  EXPECT_EQ(loaded.includes[0].target, facts.includes[0].target);
  ASSERT_EQ(loaded.index.functions.size(), facts.index.functions.size());
  const FunctionInfo& a = facts.index.functions[0];
  const FunctionInfo& b = loaded.index.functions[0];
  EXPECT_EQ(b.qualified, a.qualified);
  EXPECT_EQ(b.params, a.params);
  EXPECT_EQ(b.returns_status, a.returns_status);
  ASSERT_EQ(b.calls.size(), a.calls.size());
  for (std::size_t i = 0; i < a.calls.size(); ++i) {
    EXPECT_EQ(b.calls[i].callee, a.calls[i].callee);
    EXPECT_EQ(b.calls[i].args, a.calls[i].args);
    EXPECT_EQ(b.calls[i].held_mutexes, a.calls[i].held_mutexes);
  }
  ASSERT_EQ(b.stmts.size(), a.stmts.size());
  for (std::size_t i = 0; i < a.stmts.size(); ++i) {
    EXPECT_EQ(b.stmts[i].write_ident, a.stmts[i].write_ident);
    EXPECT_EQ(b.stmts[i].read_idents, a.stmts[i].read_idents);
    EXPECT_EQ(b.stmts[i].is_return, a.stmts[i].is_return);
  }
  // Allow markers survive.
  EXPECT_EQ(loaded.index.allows.size(), facts.index.allows.size());
}

TEST(DblintCache, RejectsStaleAndTruncatedEntries) {
  const std::string path = "src/store/s.cpp";
  const std::string content = "void f() {}\n";
  const FileFacts facts = compute_file_facts(path, content);
  const std::string dir = ::testing::TempDir() + "/dblint-cache-stale";
  store_file_facts(dir, path, fnv1a64(content), facts);
  FileFacts out;
  // Different content hash: miss.
  EXPECT_FALSE(load_file_facts(dir, path, fnv1a64(content) + 1, &out));
  // Unknown path: miss.
  EXPECT_FALSE(load_file_facts(dir, "src/other.cpp", fnv1a64(content), &out));
  // Hit for the right key.
  EXPECT_TRUE(load_file_facts(dir, path, fnv1a64(content), &out));
}

// --- Formatting and the real tree ------------------------------------------

TEST(DblintFormat, JsonOutputEscapesAndOrdersKeys) {
  const std::string json =
      to_json({{"src/a.cpp", 7, "rng", "bad \"seed\""}});
  EXPECT_NE(json.find("{\"file\": \"src/a.cpp\", \"line\": 7, \"rule\": \"rng\", "
                      "\"message\": \"bad \\\"seed\\\"\"}"),
            std::string::npos);
  EXPECT_EQ(to_json({}), "[]\n");
}


TEST(DblintFormat, FileLineRuleMessage) {
  EXPECT_EQ(format({"src/a.cpp", 7, "rng", "bad"}), "src/a.cpp:7: [rng] bad");
}

#ifdef DBLINT_REPO_ROOT
// The acceptance gate: the shipped tree must lint clean. Any new finding
// needs a fix or a reviewed `dblint:allow` escape.
TEST(DblintTree, RepositoryIsClean) {
  const auto diags = lint_tree(DBLINT_REPO_ROOT);
  for (const auto& d : diags) ADD_FAILURE() << format(d);
  EXPECT_TRUE(diags.empty());
}

// A cached run must agree with a cold run finding-for-finding, and the
// second warm run must be served entirely from the cache.
TEST(DblintTree, CacheChangesNothingAndHitsOnSecondRun) {
  const auto cold = lint_tree(DBLINT_REPO_ROOT);

  LintOptions options;
  options.cache_dir = ::testing::TempDir() + "/dblint-cache-tree";
  std::filesystem::remove_all(options.cache_dir);  // stale runs would hit
  LintStats first, second;
  const auto warm1 = lint_tree(DBLINT_REPO_ROOT, options, &first);
  const auto warm2 = lint_tree(DBLINT_REPO_ROOT, options, &second);

  ASSERT_EQ(warm1.size(), cold.size());
  ASSERT_EQ(warm2.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(format(warm1[i]), format(cold[i]));
    EXPECT_EQ(format(warm2[i]), format(cold[i]));
  }
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_GT(second.files, 0u);
  EXPECT_EQ(second.cache_hits, second.files);
}
#endif

}  // namespace
}  // namespace dblint
