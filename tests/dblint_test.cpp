// dblint rule tests: every rule (R1–R10) must fire on a bad fixture, stay
// quiet on the matching good fixture, honour `// dblint:allow(<rule>)`
// escapes, and — via DBLINT_REPO_ROOT — report the real tree clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "leakage_pass.hpp"
#include "lint.hpp"

namespace dblint {
namespace {

bool has_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

int line_of(const std::vector<Diagnostic>& diags, const std::string& rule) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) return d.line;
  }
  return -1;
}

// --- R1: ct-compare --------------------------------------------------------

TEST(DblintCtCompare, FlagsMemcmp) {
  const std::string bad =
      "bool check(const Bytes& a, const Bytes& b) {\n"
      "  return memcmp(a.data(), b.data(), a.size()) == 0;\n"
      "}\n";
  const auto diags = lint_file("src/core/x.cpp", bad);
  EXPECT_TRUE(has_rule(diags, "ct-compare"));
  EXPECT_EQ(line_of(diags, "ct-compare"), 2);
}

TEST(DblintCtCompare, FlagsEqualityOnSecretNamedBuffer) {
  EXPECT_TRUE(has_rule(lint_file("src/core/x.cpp", "if (auth_tag == expected) fail();\n"),
                       "ct-compare"));
  EXPECT_TRUE(has_rule(lint_file("src/core/x.cpp", "if (computed != mac_) reject();\n"),
                       "ct-compare"));
  EXPECT_TRUE(has_rule(lint_file("src/core/x.cpp",
                                 "bool same = std::equal(t.begin(), t.end(),\n"
                                 "                       search_token.begin());\n"),
                       "ct-compare"));
}

TEST(DblintCtCompare, SizeComparisonAndBenignNamesPass) {
  // .size() on a token buffer is public metadata; `keyword` is not `key`.
  EXPECT_FALSE(has_rule(
      lint_file("src/core/x.cpp", "if (det_token.size() == onion.size()) go();\n"),
      "ct-compare"));
  EXPECT_FALSE(has_rule(lint_file("src/core/x.cpp", "if (keyword == other) go();\n"),
                        "ct-compare"));
  EXPECT_FALSE(has_rule(
      lint_file("src/core/x.cpp", "bool operator==(const Token& o) const = default;\n"),
      "ct-compare"));
}

TEST(DblintCtCompare, AllowEscapeSuppresses) {
  const std::string escaped =
      "if (det_token == label) {  // dblint:allow(ct-compare): public label\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_file("src/core/x.cpp", escaped), "ct-compare"));
  // The marker may also sit on the line above.
  const std::string above =
      "// dblint:allow(ct-compare): public label\n"
      "if (det_token == label) go();\n";
  EXPECT_FALSE(has_rule(lint_file("src/core/x.cpp", above), "ct-compare"));
  // An escape for a DIFFERENT rule does not suppress.
  const std::string wrong_rule =
      "if (det_token == label) {  // dblint:allow(rng): unrelated\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_file("src/core/x.cpp", wrong_rule), "ct-compare"));
}

// --- R2: rng ---------------------------------------------------------------

TEST(DblintRng, FlagsWeakRngInCryptoDirs) {
  for (const char* path : {"src/crypto/x.cpp", "src/kms/x.cpp", "src/ppe/x.cpp",
                           "src/sse/x.cpp", "src/phe/x.cpp"}) {
    EXPECT_TRUE(has_rule(lint_file(path, "DetRng rng(42);\n"), "rng")) << path;
    EXPECT_TRUE(has_rule(lint_file(path, "std::mt19937_64 gen(seed);\n"), "rng")) << path;
    EXPECT_TRUE(has_rule(lint_file(path, "int r = rand();\n"), "rng")) << path;
  }
}

TEST(DblintRng, UnrestrictedDirsAndSecureRngPass) {
  // Simulation/workload directories may use deterministic randomness.
  EXPECT_FALSE(has_rule(lint_file("src/net/channel.cpp", "std::mt19937_64 rng_(s);\n"), "rng"));
  EXPECT_FALSE(has_rule(lint_file("src/workload/loadgen.cpp", "DetRng rng(7);\n"), "rng"));
  EXPECT_FALSE(has_rule(lint_file("src/crypto/x.cpp", "SecureRng rng;\n"), "rng"));
}

TEST(DblintRng, AllowEscapeSuppresses) {
  const std::string escaped =
      "DetRng rng(read_be64(seed));  // dblint:allow(rng): PRF-seeded permutation\n";
  EXPECT_FALSE(has_rule(lint_file("src/ppe/x.cpp", escaped), "rng"));
}

TEST(DblintRng, CommentMentionsDoNotFire) {
  EXPECT_FALSE(has_rule(lint_file("src/crypto/x.cpp", "// never use rand() here\n"), "rng"));
  EXPECT_FALSE(
      has_rule(lint_file("src/crypto/x.cpp", "const char* s = \"mt19937\";\n"), "rng"));
}

// --- R3: expose ------------------------------------------------------------

TEST(DblintExpose, FlagsOutsideKernel) {
  const std::string bad = "Bytes raw(key.expose_secret().begin(), key.expose_secret().end());\n";
  EXPECT_TRUE(has_rule(lint_file("src/core/gateway.cpp", bad), "expose"));
  EXPECT_TRUE(has_rule(lint_file("src/workload/scenarios.cpp", bad), "expose"));
  EXPECT_TRUE(has_rule(lint_file("tests/gateway_test.cpp", bad), "expose"));
  // Headers are not kernel files even inside crypto dirs: unwrapping
  // belongs in translation units.
  EXPECT_TRUE(has_rule(lint_file("src/ppe/det.hpp", bad), "expose"));
}

TEST(DblintExpose, KernelAllowlistPasses) {
  const std::string unwrap = "return prf(key.expose_secret(), input);\n";
  for (const char* path :
       {"src/crypto/prf.cpp", "src/crypto/aes.cpp", "src/kms/key_manager.cpp",
        "src/ppe/ope.cpp", "src/sse/mitra.cpp", "src/phe/paillier.cpp",
        "src/onion/onion.cpp", "src/common/secret.cpp"}) {
    EXPECT_FALSE(has_rule(lint_file(path, unwrap), "expose")) << path;
  }
}

TEST(DblintExpose, AllowEscapeSuppresses) {
  const std::string escaped =
      "auto v = key.expose_secret();  // dblint:allow(expose): reviewed disclosure\n";
  EXPECT_FALSE(has_rule(lint_file("src/core/gateway.cpp", escaped), "expose"));
}

// --- R10: secret-cache -----------------------------------------------------

TEST(DblintSecretCache, FlagsSecretFlowingIntoCacheContainer) {
  // An ordinary map keeps the plaintext alive after "deletion": no wipe.
  const std::string bad =
      "void remember(const SecretBytes& key) {\n"
      "  label_cache[scope] = Bytes(key.expose_secret().begin(),\n"
      "                             key.expose_secret().end());\n"
      "}\n";
  // Kernel files may expose, but caching the product is still R10.
  const auto diags = lint_file("src/sse/mitra.cpp", bad);
  EXPECT_FALSE(has_rule(diags, "expose"));  // kernel allowlist covers R3
  EXPECT_TRUE(has_rule(diags, "secret-cache"));
  EXPECT_EQ(line_of(diags, "secret-cache"), 2);
  EXPECT_TRUE(has_rule(
      lint_file("src/ppe/det.cpp",
                "trapdoor_cache.emplace(kw, token.expose_secret());\n"),
      "secret-cache"));
}

TEST(DblintSecretCache, HotCacheAndUnrelatedStatementsPass) {
  // The HotCache implementation is the single sanctioned unwrap point.
  EXPECT_FALSE(has_rule(
      lint_file("src/core/hot_cache.cpp",
                "const BytesView v = it->second.value.expose_secret();\n"),
      "secret-cache"));
  // expose without a cache container, and caches without secrets, pass.
  EXPECT_FALSE(has_rule(
      lint_file("src/crypto/prf.cpp", "return prf(key.expose_secret(), in);\n"),
      "secret-cache"));
  EXPECT_FALSE(has_rule(
      lint_file("src/core/x.cpp", "score_cache[v] = public_score(v);\n"),
      "secret-cache"));
}

TEST(DblintSecretCache, AllowEscapeSuppresses) {
  const std::string escaped =
      "mont_cache[n] = ctx.expose_secret();  "
      "// dblint:allow(secret-cache): public modulus context\n";
  EXPECT_FALSE(has_rule(lint_file("src/phe/paillier.cpp", escaped), "secret-cache"));
}

// --- R4: log-secret --------------------------------------------------------

TEST(DblintLogSecret, FlagsSecretsInLogStatements) {
  EXPECT_TRUE(has_rule(
      lint_file("src/core/x.cpp", "DB_LOG_INFO << \"key: \" << master_key;\n"), "log-secret"));
  EXPECT_TRUE(has_rule(
      lint_file("src/core/x.cpp", "log_line(LogLevel::kDebug, to_hex(prk));\n"), "log-secret"));
  // Multi-line statements are scanned to the terminating ';'.
  const std::string multiline =
      "DB_LOG_WARN << \"rotating scope \" << scope\n"
      "            << \" old=\" << old_secret;\n";
  const auto diags = lint_file("src/core/x.cpp", multiline);
  EXPECT_TRUE(has_rule(diags, "log-secret"));
  EXPECT_EQ(line_of(diags, "log-secret"), 1);  // reported at the DB_LOG line
  EXPECT_TRUE(has_rule(
      lint_file("src/core/x.cpp", "DB_LOG_DEBUG << k.expose_secret().size();\n"),
      "log-secret"));
}

TEST(DblintLogSecret, BenignLogsPass) {
  EXPECT_FALSE(has_rule(
      lint_file("src/core/x.cpp",
                "DB_LOG_INFO << \"policy: \" << s.name() << \".\" << field;\n"),
      "log-secret"));
  EXPECT_FALSE(has_rule(
      lint_file("src/core/x.cpp", "DB_LOG_DEBUG << \"keyword \" << keyword;\n"), "log-secret"));
}

TEST(DblintLogSecret, AllowEscapeSuppresses) {
  const std::string escaped =
      "DB_LOG_DEBUG << fingerprint_of(key);  // dblint:allow(log-secret): hashed\n";
  EXPECT_FALSE(has_rule(lint_file("src/core/x.cpp", escaped), "log-secret"));
}

// --- R5: layering ----------------------------------------------------------

std::vector<FileInput> with_common_header(FileInput f) {
  return {std::move(f), {"src/common/bytes.hpp", "#pragma once\n"}};
}

TEST(DblintLayering, CommonMustNotIncludeCore) {
  const auto diags = lint_include_graph(
      with_common_header({"src/common/util.hpp", "#include \"core/gateway.hpp\"\n"}));
  ASSERT_TRUE(has_rule(diags, "layering"));
  EXPECT_EQ(line_of(diags, "layering"), 1);
}

TEST(DblintLayering, LowerLayersMustNotReachUp) {
  EXPECT_TRUE(has_rule(
      lint_include_graph({{"src/crypto/aes.cpp", "#include \"kms/key_manager.hpp\"\n"}}),
      "layering"));
  EXPECT_TRUE(has_rule(
      lint_include_graph({{"src/sse/mitra.cpp", "#include \"core/policy.hpp\"\n"}}),
      "layering"));
}

TEST(DblintLayering, TacticsMustUseSchemeSurfacesNotCrypto) {
  const auto diags = lint_include_graph(
      {{"src/core/tactics/det_tactic.cpp", "#include \"crypto/gcm.hpp\"\n"}});
  ASSERT_TRUE(has_rule(diags, "layering"));
  // Non-tactics core code MAY include crypto (e.g. the exec runtime).
  EXPECT_FALSE(has_rule(
      lint_include_graph({{"src/core/exec/runtime.hpp", "#include \"crypto/gcm.hpp\"\n"}}),
      "layering"));
}

TEST(DblintLayering, DownwardIncludesPass) {
  EXPECT_FALSE(has_rule(
      lint_include_graph({{"src/core/gateway.cpp",
                           "#include \"common/bytes.hpp\"\n#include \"sse/mitra.hpp\"\n"}}),
      "layering"));
  EXPECT_FALSE(has_rule(
      lint_include_graph({{"src/sse/mitra.cpp", "#include \"crypto/prf.hpp\"\n"}}),
      "layering"));
}

TEST(DblintLayering, DetectsIncludeCycles) {
  const auto diags = lint_include_graph({
      {"src/sse/a.hpp", "#include \"sse/b.hpp\"\n"},
      {"src/sse/b.hpp", "#include \"sse/a.hpp\"\n"},
  });
  ASSERT_TRUE(has_rule(diags, "layering"));
  bool mentions_cycle = false;
  for (const auto& d : diags) {
    if (d.message.find("cycle") != std::string::npos) mentions_cycle = true;
  }
  EXPECT_TRUE(mentions_cycle);
}

TEST(DblintLayering, AllowEscapeSuppresses) {
  const auto diags = lint_include_graph(
      {{"src/common/util.hpp",
        "#include \"core/gateway.hpp\"  // dblint:allow(layering): transitional\n"}});
  EXPECT_FALSE(has_rule(diags, "layering"));
}

// --- R6: unchecked-status --------------------------------------------------

// The Status signature can come from any file in the indexed set, the way
// src/common/status.hpp declares it for the real tree.
const FileInput kStatusHeader{"src/store/s.hpp",
                              "Status sync();\nResult<int> fetch();\n"};

TEST(DblintUncheckedStatus, FlagsDiscardedStatementCall) {
  const auto diags =
      lint_indexed({kStatusHeader, {"src/store/s.cpp", "void f() {\n  sync();\n}\n"}});
  ASSERT_TRUE(has_rule(diags, "unchecked-status"));
  EXPECT_EQ(line_of(diags, "unchecked-status"), 2);
}

TEST(DblintUncheckedStatus, FlagsMemberChainAndBranchBodyDiscards) {
  EXPECT_TRUE(has_rule(
      lint_indexed({kStatusHeader,
                    {"src/store/s.cpp", "void f() {\n  store_.sync();\n}\n"}}),
      "unchecked-status"));
  // `if (x) chain.f();` is still a discard.
  EXPECT_TRUE(has_rule(
      lint_indexed({kStatusHeader,
                    {"src/store/s.cpp", "void f() {\n  if (dirty) sync();\n}\n"}}),
      "unchecked-status"));
  // Result<T> counts too.
  EXPECT_TRUE(has_rule(
      lint_indexed({kStatusHeader,
                    {"src/store/s.cpp", "void f() {\n  fetch();\n}\n"}}),
      "unchecked-status"));
}

TEST(DblintUncheckedStatus, ConsumedResultsPass) {
  for (const char* body : {
           "void f() {\n  Status s = sync();\n  (void)s;\n}\n",
           "void f() {\n  sync().throw_if_error();\n}\n",
           "bool f() {\n  return sync().ok();\n}\n",
           "void f() {\n  if (!sync().ok()) retry();\n}\n",
       }) {
    EXPECT_FALSE(has_rule(lint_indexed({kStatusHeader, {"src/store/s.cpp", body}}),
                          "unchecked-status"))
        << body;
  }
  // Non-Status callees discard freely.
  EXPECT_FALSE(has_rule(
      lint_indexed({kStatusHeader, {"src/store/s.cpp", "void f() {\n  log();\n}\n"}}),
      "unchecked-status"));
}

TEST(DblintUncheckedStatus, VoidCastAndAllowEscapeMarkDeliberateDiscards) {
  EXPECT_FALSE(has_rule(
      lint_indexed({kStatusHeader,
                    {"src/store/s.cpp",
                     "void f() {\n  // completion loss only replays\n  (void)sync();\n}\n"}}),
      "unchecked-status"));
  EXPECT_FALSE(has_rule(
      lint_indexed(
          {kStatusHeader,
           {"src/store/s.cpp",
            "void f() {\n  sync();  // dblint:allow(unchecked-status): fire-and-forget\n}\n"}}),
      "unchecked-status"));
}

// --- R7: lock-discipline ---------------------------------------------------

TEST(DblintLockDiscipline, FlagsRawLockAndUnlock) {
  const auto diags = lint_indexed(
      {{"src/store/a.cpp",
        "void KvStore::f() {\n  mutex_.lock();\n  work();\n  mutex_.unlock();\n}\n"}});
  ASSERT_TRUE(has_rule(diags, "lock-discipline"));
  EXPECT_EQ(line_of(diags, "lock-discipline"), 2);
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/store/a.cpp", "void f() {\n  mu_->try_lock();\n}\n"}}),
      "lock-discipline"));
}

TEST(DblintLockDiscipline, RaiiGuardsPass) {
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/store/a.cpp",
                     "void KvStore::f() {\n  std::lock_guard<std::mutex> lock(mutex_);\n"
                     "  work();\n}\n"}}),
      "lock-discipline"));
}

TEST(DblintLockDiscipline, ReportsLockOrderCycle) {
  const auto diags = lint_indexed(
      {{"src/store/a.cpp",
        "void Store::f() {\n"
        "  std::lock_guard<std::mutex> g1(a_);\n"
        "  std::lock_guard<std::mutex> g2(b_);\n"
        "}\n"
        "void Store::g() {\n"
        "  std::lock_guard<std::mutex> g1(b_);\n"
        "  std::lock_guard<std::mutex> g2(a_);\n"
        "}\n"}});
  ASSERT_TRUE(has_rule(diags, "lock-discipline"));
  bool mentions_cycle = false;
  for (const auto& d : diags) {
    if (d.message.find("lock-order cycle") != std::string::npos) mentions_cycle = true;
  }
  EXPECT_TRUE(mentions_cycle);
}

TEST(DblintLockDiscipline, ConsistentOrderAndScopedScopesPass) {
  // Same order everywhere: no cycle.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/store/a.cpp",
                     "void Store::f() {\n"
                     "  std::lock_guard<std::mutex> g1(a_);\n"
                     "  std::lock_guard<std::mutex> g2(b_);\n"
                     "}\n"
                     "void Store::g() {\n"
                     "  std::lock_guard<std::mutex> g1(a_);\n"
                     "  std::lock_guard<std::mutex> g2(b_);\n"
                     "}\n"}}),
      "lock-discipline"));
  // Sequential (non-nested) scopes impose no order.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/store/a.cpp",
                     "void Store::f() {\n"
                     "  { std::lock_guard<std::mutex> g(a_); }\n"
                     "  { std::lock_guard<std::mutex> g(b_); }\n"
                     "}\n"
                     "void Store::g() {\n"
                     "  { std::lock_guard<std::mutex> g(b_); }\n"
                     "  { std::lock_guard<std::mutex> g(a_); }\n"
                     "}\n"}}),
      "lock-discipline"));
}

TEST(DblintLockDiscipline, MemberMutexesAreClassQualified) {
  // Two classes both nest `mutex_` against the same global — opposite
  // textual order, but distinct nodes once qualified: no cycle.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/store/a.cpp",
                     "void KvStore::f() {\n"
                     "  std::lock_guard<std::mutex> g(mutex_);\n"
                     "  std::lock_guard<std::mutex> h(g_mu);\n"
                     "}\n"},
                    {"src/doc/b.cpp",
                     "void DocStore::f() {\n"
                     "  std::lock_guard<std::mutex> g(g_mu);\n"
                     "  std::lock_guard<std::mutex> h(mutex_);\n"
                     "}\n"}}),
      "lock-discipline"));
}

TEST(DblintLockDiscipline, AllowEscapeSuppresses) {
  EXPECT_FALSE(has_rule(
      lint_indexed(
          {{"src/store/a.cpp",
            "void f() {\n  mu_.lock();  // dblint:allow(lock-discipline): handoff\n}\n"}}),
      "lock-discipline"));
}

// --- R8: plaintext-egress --------------------------------------------------

TEST(DblintPlaintextEgress, FlagsPlaintextIdentifiersAtEgress) {
  const auto diags = lint_indexed(
      {{"src/core/exec/plan.cpp",
        "void f() {\n  cloud_.call(method, plaintext_value);\n}\n"}});
  ASSERT_TRUE(has_rule(diags, "plaintext-egress"));
  EXPECT_EQ(line_of(diags, "plaintext-egress"), 2);
  // doc::Value accessors are plaintext-derived by construction.
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/core/gateway.cpp",
                     "void f() {\n  cloud_.send_batch(v.as_string());\n}\n"}}),
      "plaintext-egress"));
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/core/gateway.cpp",
                     "void f() {\n  chan.transfer_request(doc_value.size(), m);\n}\n"}}),
      "plaintext-egress"));
}

TEST(DblintPlaintextEgress, SealedPayloadsAndWireConstructorPass) {
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/core/exec/plan.cpp",
                     "void f() {\n  cloud_.call(method, sealed_blob);\n}\n"}}),
      "plaintext-egress"));
  // The capital-V `Value(...)` wire constructor is allowed; the ban is
  // case-sensitive on purpose.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/core/exec/plan.cpp",
                     "void f() {\n  cloud_.call(method, Value(sealed_id));\n}\n"}}),
      "plaintext-egress"));
  // Non-egress callees carry anything.
  EXPECT_FALSE(has_rule(
      lint_indexed({{"src/core/exec/plan.cpp",
                     "void f() {\n  journal_.record(plaintext_value);\n}\n"}}),
      "plaintext-egress"));
}

TEST(DblintPlaintextEgress, ReplicationEgressCalleesAreCovered) {
  // The replication layer's egress surfaces are first-class: routing a
  // plaintext-derived identifier into a replica group or straight into a
  // replica's dispatch must fire like any RpcClient::call would.
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/core/exec/executor.cpp",
                     "void f() {\n  group_->call_write(m, plaintext_bytes);\n}\n"}}),
      "plaintext-egress"));
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/core/gateway.cpp",
                     "void f() {\n  group_->call_read(m, v.as_int());\n}\n"}}),
      "plaintext-egress"));
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/core/cloud_node.cpp",
                     "void f() {\n  server->dispatch(secret_label);\n}\n"}}),
      "plaintext-egress"));
  // The replication TUs themselves are scanned (NOT allowlisted): sealed
  // replay traffic passes, plaintext would not.
  EXPECT_FALSE(has_rule(
      lint_indexed(
          {{"src/net/replica_group.cpp",
            "void f() {\n  r.endpoint.channel->transfer_request(wire.size(), m);\n}\n"}}),
      "plaintext-egress"));
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/net/replica_group.cpp",
                     "void f() {\n  r.endpoint.channel->transfer_request(value.size(), m);\n}\n"}}),
      "plaintext-egress"));
  EXPECT_TRUE(has_rule(
      lint_indexed({{"src/core/replication.cpp",
                     "void f() {\n  group_->call_write(m, plaintext_payload);\n}\n"}}),
      "plaintext-egress"));
}

TEST(DblintPlaintextEgress, KernelAllowlistAndTestsAreExempt) {
  const std::string body = "void f() {\n  ctx_.cloud->call(m, value.scalar_bytes());\n}\n";
  EXPECT_TRUE(has_rule(lint_indexed({{"src/core/exec/executor.cpp", body}}),
                       "plaintext-egress"));
  for (const char* path :
       {"src/core/tactics/det_tactic.cpp", "src/net/rpc.cpp",
        "src/workload/scenarios.cpp", "tests/rpc_test.cpp"}) {
    EXPECT_FALSE(has_rule(lint_indexed({{path, body}}), "plaintext-egress")) << path;
  }
}

TEST(DblintPlaintextEgress, AllowEscapeSuppresses) {
  EXPECT_FALSE(has_rule(
      lint_indexed(
          {{"src/core/exec/plan.cpp",
            "void f() {\n"
            "  // dblint:allow(plaintext-egress): public collection name\n"
            "  cloud_.call(m, col_value);\n}\n"}}),
      "plaintext-egress"));
}

// --- R9: leakage-conformance -----------------------------------------------

std::string tactic_src(const std::string& cls, const std::string& op,
                       const std::string& leak) {
  return "TacticDescriptor t;\n"
         "t.name = \"FIX\";\n"
         "t.protection_class = schema::ProtectionClass::" + cls + ";\n"
         "t.operations = {\n"
         "    {TacticOperation::" + op + ", {LeakageLevel::" + leak + ", \"O(1)\", 1}},\n"
         "};\n";
}

TEST(DblintLeakage, FlagsQueryLeakageAboveClassCeiling) {
  // A Class2 (identifiers) tactic whose search leaks equalities is
  // mis-registered — the same fixture the runtime registry test rejects.
  const auto diags = lint_leakage_conformance(
      {{"src/core/tactics/evil_tactic.cpp",
        tactic_src("kClass2", "kEqualitySearch", "kEqualities")}});
  ASSERT_TRUE(has_rule(diags, "leakage-conformance"));
  EXPECT_EQ(line_of(diags, "leakage-conformance"), 5);  // the declaring row
}

TEST(DblintLeakage, CeilingRespectsOperationFamilies) {
  // Query ops are bounded exactly by the class rung.
  EXPECT_FALSE(has_rule(
      lint_leakage_conformance({{"src/core/tactics/a_tactic.cpp",
                                 tactic_src("kClass2", "kEqualitySearch", "kIdentifiers")}}),
      "leakage-conformance"));
  // Update-pattern equality leakage is tolerated for Class2..4 (the
  // stateless-Mitra shape) but not for Class1 (forward privacy).
  EXPECT_FALSE(has_rule(
      lint_leakage_conformance({{"src/core/tactics/a_tactic.cpp",
                                 tactic_src("kClass2", "kInsert", "kEqualities")}}),
      "leakage-conformance"));
  EXPECT_TRUE(has_rule(
      lint_leakage_conformance({{"src/core/tactics/a_tactic.cpp",
                                 tactic_src("kClass1", "kInsert", "kEqualities")}}),
      "leakage-conformance"));
  // Init may never reveal more than structure, for any class.
  EXPECT_TRUE(has_rule(
      lint_leakage_conformance({{"src/core/tactics/a_tactic.cpp",
                                 tactic_src("kClass5", "kInit", "kIdentifiers")}}),
      "leakage-conformance"));
}

TEST(DblintLeakage, MissingDescriptorTableIsItselfAFinding) {
  EXPECT_TRUE(has_rule(
      lint_leakage_conformance({{"src/core/tactics/empty_tactic.cpp", "void f() {}\n"}}),
      "leakage-conformance"));
  // Only *_tactic.cpp files are in scope.
  EXPECT_FALSE(has_rule(
      lint_leakage_conformance({{"src/core/exec/plan.cpp", "void f() {}\n"}}),
      "leakage-conformance"));
}

TEST(DblintLeakage, AllowEscapeSuppresses) {
  std::string src = tactic_src("kClass2", "kEqualitySearch", "kEqualities");
  const std::string row = "{TacticOperation::kEqualitySearch,";
  src.replace(src.find(row), row.size(),
              "// dblint:allow(leakage-conformance): reviewed exception\n    " + row);
  EXPECT_FALSE(has_rule(
      lint_leakage_conformance({{"src/core/tactics/evil_tactic.cpp", src}}),
      "leakage-conformance"));
}

TEST(DblintLeakage, MatrixIsDeterministicAndCeilingDriven) {
  const std::vector<FileInput> files = {
      {"src/core/tactics/a_tactic.cpp",
       tactic_src("kClass2", "kEqualitySearch", "kIdentifiers")}};
  const std::string a = leakage_matrix_markdown(files);
  EXPECT_EQ(a, leakage_matrix_markdown(files));
  // One ceiling row straight out of schema::leakage_ceiling.
  EXPECT_NE(a.find("| equality_search | Structure | Identifiers | Predicates | "
                   "Equalities | Order |"),
            std::string::npos);
  // The declared profile, with its ceiling alongside.
  EXPECT_NE(a.find("| FIX | Class2 | equality_search | Identifiers | Identifiers |"),
            std::string::npos);
}

// --- Formatting and the real tree ------------------------------------------

TEST(DblintFormat, JsonOutputEscapesAndOrdersKeys) {
  const std::string json =
      to_json({{"src/a.cpp", 7, "rng", "bad \"seed\""}});
  EXPECT_NE(json.find("{\"file\": \"src/a.cpp\", \"line\": 7, \"rule\": \"rng\", "
                      "\"message\": \"bad \\\"seed\\\"\"}"),
            std::string::npos);
  EXPECT_EQ(to_json({}), "[]\n");
}


TEST(DblintFormat, FileLineRuleMessage) {
  EXPECT_EQ(format({"src/a.cpp", 7, "rng", "bad"}), "src/a.cpp:7: [rng] bad");
}

#ifdef DBLINT_REPO_ROOT
// The acceptance gate: the shipped tree must lint clean. Any new finding
// needs a fix or a reviewed `dblint:allow` escape.
TEST(DblintTree, RepositoryIsClean) {
  const auto diags = lint_tree(DBLINT_REPO_ROOT);
  for (const auto& d : diags) ADD_FAILURE() << format(d);
  EXPECT_TRUE(diags.empty());
}
#endif

}  // namespace
}  // namespace dblint
