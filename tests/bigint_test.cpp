// Arbitrary-precision integer tests: arithmetic identities, known values,
// modular algebra and primality.
#include <gtest/gtest.h>

#include "bigint/bigint.hpp"
#include "bigint/prime.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace datablinder::bigint {
namespace {

TEST(BigIntTest, ConstructionAndDecimal) {
  EXPECT_EQ(BigInt(0).to_decimal(), "0");
  EXPECT_EQ(BigInt(42).to_decimal(), "42");
  EXPECT_EQ(BigInt(-42).to_decimal(), "-42");
  EXPECT_EQ(BigInt(INT64_MAX).to_decimal(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).to_decimal(), "-9223372036854775808");
  EXPECT_EQ(BigInt(UINT64_MAX).to_decimal(), "18446744073709551615");
}

TEST(BigIntTest, DecimalRoundTrip) {
  const char* cases[] = {"0", "1", "-1", "999999999999999999999999999999",
                         "-123456789012345678901234567890123456789"};
  for (const char* c : cases) {
    EXPECT_EQ(BigInt::from_decimal(c).to_decimal(), c);
  }
  EXPECT_THROW(BigInt::from_decimal(""), Error);
  EXPECT_THROW(BigInt::from_decimal("12a"), Error);
  EXPECT_THROW(BigInt::from_decimal("-"), Error);
}

TEST(BigIntTest, HexRoundTrip) {
  EXPECT_EQ(BigInt::from_hex("ff").to_decimal(), "255");
  EXPECT_EQ(BigInt::from_hex("DEADBEEF").to_hex(), "deadbeef");
  EXPECT_EQ(BigInt(255).to_hex(), "ff");
  EXPECT_EQ(BigInt(0).to_hex(), "0");
}

TEST(BigIntTest, BytesRoundTrip) {
  const Bytes b = hex_decode("0102030405060708090a0b0c0d0e0f");
  const BigInt v = BigInt::from_bytes(b);
  EXPECT_EQ(v.to_bytes(), b);
  EXPECT_EQ(v.to_bytes(20).size(), 20u);  // left-padded
  EXPECT_EQ(BigInt::from_bytes(v.to_bytes(20)), v);
  EXPECT_TRUE(BigInt::from_bytes({}).is_zero());
}

TEST(BigIntTest, AdditionSubtraction) {
  const BigInt a = BigInt::from_decimal("123456789012345678901234567890");
  const BigInt b = BigInt::from_decimal("987654321098765432109876543210");
  EXPECT_EQ((a + b).to_decimal(), "1111111110111111111011111111100");
  EXPECT_EQ((b - a).to_decimal(), "864197532086419753208641975320");
  EXPECT_EQ((a - b).to_decimal(), "-864197532086419753208641975320");
  EXPECT_EQ((a - a).to_decimal(), "0");
  EXPECT_EQ((a + (-a)).to_decimal(), "0");
}

TEST(BigIntTest, Multiplication) {
  const BigInt a = BigInt::from_decimal("123456789012345678901234567890");
  const BigInt b = BigInt::from_decimal("987654321098765432109876543210");
  EXPECT_EQ((a * b).to_decimal(),
            "121932631137021795226185032733622923332237463801111263526900");
  EXPECT_EQ((a * BigInt(0)).to_decimal(), "0");
  EXPECT_EQ((a * BigInt(-1)).to_decimal(), "-" + a.to_decimal());
  EXPECT_EQ(((-a) * (-b)), a * b);
}

TEST(BigIntTest, DivisionKnuthD) {
  const BigInt a = BigInt::from_decimal("121932631137021795226185032733622923332237463801111263526900");
  const BigInt b = BigInt::from_decimal("987654321098765432109876543210");
  EXPECT_EQ((a / b).to_decimal(), "123456789012345678901234567890");
  EXPECT_EQ((a % b).to_decimal(), "0");

  const BigInt n = BigInt::from_decimal("987654321098765432109876543211");
  BigInt q, r;
  BigInt::div_mod(n, b, q, r);
  EXPECT_EQ(q.to_decimal(), "1");
  EXPECT_EQ(r.to_decimal(), "1");
  EXPECT_EQ(q * b + r, n);
  EXPECT_THROW(n / BigInt(0), Error);
}

TEST(BigIntTest, DivisionRandomizedInvariant) {
  DetRng rng(2024);
  for (int i = 0; i < 200; ++i) {
    const BigInt num = BigInt::from_bytes(rng.bytes(1 + rng.uniform(24)));
    const BigInt den = BigInt::from_bytes(rng.bytes(1 + rng.uniform(12)));
    if (den.is_zero()) continue;
    BigInt q, r;
    BigInt::div_mod(num, den, q, r);
    EXPECT_EQ(q * den + r, num);
    EXPECT_LT(r, den);
  }
}

TEST(BigIntTest, TruncatedDivisionSigns) {
  // C++ semantics: quotient toward zero, remainder has dividend's sign.
  EXPECT_EQ((BigInt(-17) / BigInt(5)).to_i64(), -3);
  EXPECT_EQ((BigInt(-17) % BigInt(5)).to_i64(), -2);
  EXPECT_EQ((BigInt(17) / BigInt(-5)).to_i64(), -3);
  EXPECT_EQ((BigInt(17) % BigInt(-5)).to_i64(), 2);
  // Euclidean mod is always non-negative.
  EXPECT_EQ((-BigInt(17)).mod(BigInt(5)).to_i64(), 3);
}

TEST(BigIntTest, Shifts) {
  const BigInt one(1);
  EXPECT_EQ((one << 100).to_hex(), "10000000000000000000000000");
  EXPECT_EQ(((one << 100) >> 100), one);
  EXPECT_EQ((BigInt(0xff) << 4).to_hex(), "ff0");
  EXPECT_EQ((BigInt(0xff0) >> 4).to_hex(), "ff");
  EXPECT_TRUE((BigInt(1) >> 2).is_zero());
}

TEST(BigIntTest, BitAccess) {
  const BigInt v = BigInt::from_hex("8000000000000001");
  EXPECT_EQ(v.bit_length(), 64u);
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(BigInt(0).bit_length(), 0u);
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt::from_decimal("100000000000000000000"), BigInt(INT64_MAX));
  EXPECT_EQ(BigInt(7), BigInt(7));
}

TEST(BigIntTest, PowModFermat) {
  const BigInt p = BigInt::from_decimal("1000000007");
  for (std::int64_t base : {2, 3, 5, 123456}) {
    EXPECT_EQ(BigInt(base).pow_mod(p - BigInt(1), p), BigInt(1));
  }
  EXPECT_EQ(BigInt(5).pow_mod(BigInt(0), p), BigInt(1));
  EXPECT_EQ(BigInt(5).pow_mod(BigInt(1), p), BigInt(5));
}

TEST(BigIntTest, InvMod) {
  const BigInt m = BigInt::from_decimal("1000000007");
  DetRng rng(7);
  for (int i = 0; i < 50; ++i) {
    const BigInt a(static_cast<std::int64_t>(1 + rng.uniform(1000000))) ;
    const BigInt inv = a.inv_mod(m);
    EXPECT_EQ(a.mul_mod(inv, m), BigInt(1));
  }
  EXPECT_THROW(BigInt(6).inv_mod(BigInt(9)), Error);  // gcd 3
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)).to_i64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)).to_i64(), 6);
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_i64(), 5);
  EXPECT_EQ(BigInt::lcm(BigInt(4), BigInt(6)).to_i64(), 12);
  EXPECT_TRUE(BigInt::lcm(BigInt(0), BigInt(5)).is_zero());
}

TEST(BigIntTest, RandomBelowInRange) {
  const BigInt bound = BigInt::from_decimal("1000000000000000000000");
  for (int i = 0; i < 50; ++i) {
    const BigInt r = BigInt::random_below(bound);
    EXPECT_LT(r, bound);
    EXPECT_FALSE(r.is_negative());
  }
}

TEST(BigIntTest, RandomBitsExactWidth) {
  for (std::size_t bits : {8u, 13u, 64u, 100u, 256u}) {
    EXPECT_EQ(BigInt::random_bits(bits).bit_length(), bits);
  }
}

TEST(PrimeTest, KnownPrimesAndComposites) {
  EXPECT_TRUE(is_probable_prime(BigInt(2)));
  EXPECT_TRUE(is_probable_prime(BigInt(3)));
  EXPECT_FALSE(is_probable_prime(BigInt(1)));
  EXPECT_FALSE(is_probable_prime(BigInt(0)));
  EXPECT_TRUE(is_probable_prime(BigInt::from_decimal("1000000007")));
  EXPECT_FALSE(is_probable_prime(BigInt::from_decimal("1000000008")));
  // Mersenne prime 2^127 - 1.
  EXPECT_TRUE(is_probable_prime(
      BigInt::from_decimal("170141183460469231731687303715884105727")));
  // Carmichael number 561 = 3 * 11 * 17 (fools Fermat, not Miller-Rabin).
  EXPECT_FALSE(is_probable_prime(BigInt(561)));
  EXPECT_FALSE(is_probable_prime(BigInt::from_decimal("340561")));  // Carmichael
}

TEST(PrimeTest, GeneratePrimeHasRequestedSize) {
  const BigInt p = generate_prime(128);
  EXPECT_EQ(p.bit_length(), 128u);
  EXPECT_TRUE(is_probable_prime(p));
}

TEST(PrimeTest, PrimePairSuitsPaillier) {
  const auto [p, q] = generate_prime_pair(96);
  EXPECT_NE(p, q);
  const BigInt n = p * q;
  const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
  EXPECT_EQ(BigInt::gcd(n, phi), BigInt(1));
}

}  // namespace
}  // namespace datablinder::bigint
