// End-to-end tests of the Gateway API (Entities interface) against a
// CloudNode over the simulated channel, exercising every tactic the §5.1
// policy selects.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/status.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "doc/binary_codec.hpp"
#include "fhir/observation.hpp"

namespace datablinder::core {
namespace {

using doc::Document;
using doc::Value;

class GatewayFixture : public ::testing::Test {
 protected:
  GatewayFixture()
      : rpc_(cloud_.rpc(), channel_),
        gateway_(rpc_, kms_, local_, registry_,
                 GatewayConfig{{{"paillier_modulus_bits", "256"},
                                {"sophos_modulus_bits", "512"}}}) {
    register_builtin_tactics(registry_);
  }

  void register_observation_schema() {
    gateway_.register_schema(fhir::observation_schema("obs"));
  }

  Document make_obs(const std::string& status, const std::string& code,
                    const std::string& subject, std::int64_t effective,
                    double value) {
    Document d;
    d.set("identifier", Value(std::int64_t{1}));
    d.set("status", Value(status));
    d.set("code", Value(code));
    d.set("subject", Value(subject));
    d.set("effective", Value(effective));
    d.set("issued", Value(effective + 1000));
    d.set("performer", Value("Dr. Smith"));
    d.set("value", Value(value));
    d.set("interpretation", Value("Normal"));
    return d;
  }

  CloudNode cloud_;
  net::Channel channel_;
  net::RpcClient rpc_;
  kms::KeyManager kms_;
  store::KvStore local_;
  TacticRegistry registry_;
  Gateway gateway_;
};

TEST_F(GatewayFixture, PolicySelectionMatchesPaperTable) {
  register_observation_schema();
  const CollectionPlan& plan = gateway_.plan("obs");

  // §5.1 selection table.
  EXPECT_EQ(plan.boolean_tactic, "BIEX-2Lev");
  EXPECT_TRUE(plan.fields.at("status").boolean_member);
  EXPECT_TRUE(plan.fields.at("code").boolean_member);
  EXPECT_EQ(plan.fields.at("subject").eq_tactic, "Mitra");
  EXPECT_EQ(plan.fields.at("effective").eq_tactic, "DET");
  EXPECT_EQ(plan.fields.at("effective").range_tactic, "OPE");
  EXPECT_EQ(plan.fields.at("issued").eq_tactic, "DET");
  EXPECT_EQ(plan.fields.at("issued").range_tactic, "OPE");
  EXPECT_EQ(plan.fields.at("performer").tactics, std::vector<std::string>{"RND"});
  EXPECT_TRUE(plan.fields.at("value").boolean_member);
  EXPECT_EQ(plan.fields.at("value").agg_tactic, "Paillier");
}

TEST_F(GatewayFixture, InsertReadRoundTrip) {
  register_observation_schema();
  Document d = make_obs("final", "glucose", "John Doe", 1359966610, 6.3);
  const DocId id = gateway_.insert("obs", d);
  EXPECT_FALSE(id.empty());

  const Document back = gateway_.read("obs", id);
  EXPECT_EQ(back.at("status").as_string(), "final");
  EXPECT_EQ(back.at("subject").as_string(), "John Doe");
  EXPECT_DOUBLE_EQ(back.at("value").as_double(), 6.3);
}

TEST_F(GatewayFixture, ReadUnknownIdThrows) {
  register_observation_schema();
  EXPECT_THROW(gateway_.read("obs", "nope"), Error);
}

TEST_F(GatewayFixture, SchemaValidationRejectsBadDocuments) {
  register_observation_schema();
  Document d = make_obs("final", "glucose", "John Doe", 1, 1.0);
  d.set("unknown_field", Value("x"));
  EXPECT_THROW(gateway_.insert("obs", d), Error);

  Document d2 = make_obs("final", "glucose", "John Doe", 1, 1.0);
  d2.set("status", Value(std::int64_t{42}));  // type mismatch
  EXPECT_THROW(gateway_.insert("obs", d2), Error);
}

TEST_F(GatewayFixture, EqualitySearchViaMitra) {
  register_observation_schema();
  gateway_.insert("obs", make_obs("final", "glucose", "Alice", 100, 5.0));
  gateway_.insert("obs", make_obs("final", "glucose", "Bob", 200, 6.0));
  gateway_.insert("obs", make_obs("amended", "sodium", "Alice", 300, 7.0));

  const auto alice = gateway_.equality_search("obs", "subject", Value("Alice"));
  EXPECT_EQ(alice.size(), 2u);
  for (const auto& d : alice) EXPECT_EQ(d.at("subject").as_string(), "Alice");

  EXPECT_TRUE(gateway_.equality_search("obs", "subject", Value("Nobody")).empty());
}

TEST_F(GatewayFixture, EqualityFoldedIntoBoolean) {
  register_observation_schema();
  gateway_.insert("obs", make_obs("final", "glucose", "Alice", 100, 5.0));
  gateway_.insert("obs", make_obs("amended", "glucose", "Bob", 200, 6.0));

  // status has no dedicated eq tactic: equality goes through BIEX-2Lev.
  const auto finals = gateway_.equality_search("obs", "status", Value("final"));
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_EQ(finals[0].at("subject").as_string(), "Alice");
}

TEST_F(GatewayFixture, BooleanConjunctionAcrossFields) {
  register_observation_schema();
  gateway_.insert("obs", make_obs("final", "glucose", "Alice", 100, 5.0));
  gateway_.insert("obs", make_obs("final", "sodium", "Bob", 200, 6.0));
  gateway_.insert("obs", make_obs("amended", "glucose", "Carol", 300, 7.0));

  FieldBoolQuery q;
  q.dnf.push_back({{"status", Value("final")}, {"code", Value("glucose")}});
  const auto hits = gateway_.boolean_search("obs", q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].at("subject").as_string(), "Alice");
}

TEST_F(GatewayFixture, BooleanDisjunction) {
  register_observation_schema();
  gateway_.insert("obs", make_obs("final", "glucose", "Alice", 100, 5.0));
  gateway_.insert("obs", make_obs("amended", "sodium", "Bob", 200, 6.0));
  gateway_.insert("obs", make_obs("preliminary", "potassium", "Carol", 300, 7.0));

  FieldBoolQuery q;
  q.dnf.push_back({{"code", Value("glucose")}});
  q.dnf.push_back({{"code", Value("sodium")}});
  const auto hits = gateway_.boolean_search("obs", q);
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(GatewayFixture, BooleanMixesSseAndDetTerms) {
  register_observation_schema();
  gateway_.insert("obs", make_obs("final", "glucose", "Alice", 100, 5.0));
  gateway_.insert("obs", make_obs("final", "glucose", "Bob", 100, 6.0));
  gateway_.insert("obs", make_obs("final", "glucose", "Carol", 999, 7.0));

  // status/code are BIEX members; effective resolves through DET equality.
  FieldBoolQuery q;
  q.dnf.push_back({{"status", Value("final")},
                   {"effective", Value(std::int64_t{100})}});
  const auto hits = gateway_.boolean_search("obs", q);
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(GatewayFixture, RangeSearchViaOpe) {
  register_observation_schema();
  gateway_.insert("obs", make_obs("final", "glucose", "Alice", 100, 5.0));
  gateway_.insert("obs", make_obs("final", "glucose", "Bob", 500, 6.0));
  gateway_.insert("obs", make_obs("final", "glucose", "Carol", 900, 7.0));

  const auto hits = gateway_.range_search("obs", "effective", Value(std::int64_t{200}),
                                          Value(std::int64_t{800}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].at("subject").as_string(), "Bob");

  // Inclusive bounds.
  EXPECT_EQ(gateway_
                .range_search("obs", "effective", Value(std::int64_t{100}),
                              Value(std::int64_t{900}))
                .size(),
            3u);
}

TEST_F(GatewayFixture, AverageViaPaillier) {
  register_observation_schema();
  gateway_.insert("obs", make_obs("final", "glucose", "Alice", 100, 5.0));
  gateway_.insert("obs", make_obs("final", "glucose", "Bob", 200, 6.0));
  gateway_.insert("obs", make_obs("final", "glucose", "Carol", 300, 7.0));

  const AggregateResult avg = gateway_.aggregate("obs", "value", schema::Aggregate::kAverage);
  EXPECT_EQ(avg.count, 3u);
  EXPECT_NEAR(avg.value, 6.0, 1e-9);

  const AggregateResult sum = gateway_.aggregate("obs", "value", schema::Aggregate::kSum);
  EXPECT_NEAR(sum.value, 18.0, 1e-9);
}

TEST_F(GatewayFixture, DeleteRemovesFromAllIndexes) {
  register_observation_schema();
  const DocId keep = gateway_.insert("obs", make_obs("final", "glucose", "Alice", 100, 5.0));
  const DocId gone = gateway_.insert("obs", make_obs("final", "glucose", "Bob", 500, 9.0));

  gateway_.remove("obs", gone);

  EXPECT_THROW(gateway_.read("obs", gone), Error);
  EXPECT_EQ(gateway_.equality_search("obs", "subject", Value("Bob")).size(), 0u);
  EXPECT_EQ(gateway_.equality_search("obs", "status", Value("final")).size(), 1u);
  EXPECT_EQ(gateway_
                .range_search("obs", "effective", Value(std::int64_t{0}),
                              Value(std::int64_t{1000}))
                .size(),
            1u);
  const auto avg = gateway_.aggregate("obs", "value", schema::Aggregate::kAverage);
  EXPECT_EQ(avg.count, 1u);
  EXPECT_NEAR(avg.value, 5.0, 1e-9);
  (void)keep;
}

TEST_F(GatewayFixture, UpdateReplacesDocumentAndIndexes) {
  register_observation_schema();
  const DocId id = gateway_.insert("obs", make_obs("final", "glucose", "Alice", 100, 5.0));

  Document updated = make_obs("amended", "sodium", "Alice", 700, 8.0);
  updated.id = id;
  gateway_.update("obs", updated);

  EXPECT_EQ(gateway_.read("obs", id).at("status").as_string(), "amended");
  EXPECT_TRUE(gateway_.equality_search("obs", "status", Value("final")).empty());
  EXPECT_EQ(gateway_.equality_search("obs", "status", Value("amended")).size(), 1u);
  EXPECT_EQ(gateway_
                .range_search("obs", "effective", Value(std::int64_t{600}),
                              Value(std::int64_t{800}))
                .size(),
            1u);
}

TEST_F(GatewayFixture, UnsearchableFieldRejected) {
  register_observation_schema();
  gateway_.insert("obs", make_obs("final", "glucose", "Alice", 100, 5.0));
  // performer is C1 insert-only: no equality tactic.
  EXPECT_THROW(gateway_.equality_search("obs", "performer", Value("Dr. Smith")), Error);
  // subject has no range tactic.
  EXPECT_THROW(gateway_.range_search("obs", "subject", Value("A"), Value("Z")), Error);
  // status has no aggregate tactic.
  EXPECT_THROW(gateway_.aggregate("obs", "status", schema::Aggregate::kSum), Error);
}

TEST_F(GatewayFixture, DuplicateSchemaRejected) {
  register_observation_schema();
  EXPECT_THROW(register_observation_schema(), Error);
}

TEST_F(GatewayFixture, UnknownCollectionRejected) {
  EXPECT_THROW(gateway_.read("nope", "id"), Error);
  EXPECT_THROW(gateway_.plan("nope"), Error);
}

TEST_F(GatewayFixture, BenchmarkSchemaSelectsPaperTactics) {
  gateway_.register_schema(fhir::benchmark_schema("bench"));
  const CollectionPlan& plan = gateway_.plan("bench");
  // §5.2: Mitra, RND, Paillier and five DETs.
  EXPECT_EQ(plan.boolean_tactic, "");
  int det_count = 0;
  for (const auto& [field, fp] : plan.fields) {
    det_count += std::count(fp.tactics.begin(), fp.tactics.end(), std::string("DET"));
  }
  EXPECT_EQ(det_count, 5);
  EXPECT_EQ(plan.fields.at("subject").eq_tactic, "Mitra");
  EXPECT_EQ(plan.fields.at("performer").tactics, std::vector<std::string>{"RND"});
  EXPECT_EQ(plan.fields.at("value").agg_tactic, "Paillier");
}

TEST_F(GatewayFixture, NoPlaintextCrossesTheChannel) {
  // Leakage smoke test: marker strings from inserted documents must never
  // appear in any byte that crossed the gateway->cloud channel.
  register_observation_schema();

  // Capture all request payloads by wrapping the RPC server dispatch: the
  // CloudNode stores only what crossed the wire, so scan its storage plus
  // a fresh search round trip.
  const std::string marker_subject = "ZZuniquesubjectZZ";
  Document d = make_obs("final", "glucose", marker_subject, 123456, 6.25);
  d.set("performer", Value("ZZsecretperformerZZ"));
  const DocId id = gateway_.insert("obs", d);

  // The stored blob (exactly what crossed the wire) must not contain the
  // plaintext markers: documents are AEAD blobs, indexes are PRF labels.
  doc::Object probe;
  probe["col"] = doc::Value("obs");
  probe["id"] = doc::Value(id);
  const Bytes reply = rpc_.call("doc.get", doc::encode_value(doc::Value(probe)));
  const std::string wire(reply.begin(), reply.end());
  EXPECT_EQ(wire.find(marker_subject), std::string::npos);
  EXPECT_EQ(wire.find("ZZsecretperformerZZ"), std::string::npos);

  // And the document still round-trips.
  EXPECT_EQ(gateway_.read("obs", id).at("subject").as_string(), marker_subject);
}

TEST_F(GatewayFixture, DefaultConfigHasNoCacheOrCostModel) {
  // Byte-identical-off guarantee: adaptive selection and the hot cache are
  // strictly opt-in, so a default-config gateway takes the static paths.
  EXPECT_EQ(gateway_.cache(), nullptr);
  EXPECT_EQ(gateway_.cost_model(), nullptr);
}

// --- HotCache integration: epoch + keyed invalidation, adaptive planning ---

class CachedGatewayFixture : public ::testing::Test {
 protected:
  static GatewayConfig make_config(bool adaptive) {
    GatewayConfig cfg{{{"paillier_modulus_bits", "256"},
                       {"sophos_modulus_bits", "512"}}};
    cfg.hot_cache_capacity = 256;
    cfg.adaptive_selection = adaptive;
    return cfg;
  }

  explicit CachedGatewayFixture(bool adaptive = false)
      : rpc_(cloud_.rpc(), channel_),
        gateway_(rpc_, kms_, local_, registry_, make_config(adaptive)) {
    register_builtin_tactics(registry_);
    gateway_.register_schema(fhir::observation_schema("obs"));
  }

  Document make_obs(const std::string& status, const std::string& subject,
                    std::int64_t effective, double value) {
    Document d;
    d.set("identifier", Value(std::int64_t{1}));
    d.set("status", Value(status));
    d.set("code", Value("glucose"));
    d.set("subject", Value(subject));
    d.set("effective", Value(effective));
    d.set("issued", Value(effective + 1000));
    d.set("performer", Value("Dr. Smith"));
    d.set("value", Value(value));
    d.set("interpretation", Value("Normal"));
    return d;
  }

  CloudNode cloud_;
  net::Channel channel_;
  net::RpcClient rpc_;
  kms::KeyManager kms_;
  store::KvStore local_;
  TacticRegistry registry_;
  Gateway gateway_;
};

TEST_F(CachedGatewayFixture, RepeatQueriesHitTheCacheUntilTheEpochBumps) {
  gateway_.insert("obs", make_obs("final", "Alice", 100, 5.0));
  gateway_.insert("obs", make_obs("final", "Bob", 500, 6.0));
  const DocId gone = gateway_.insert("obs", make_obs("final", "Carol", 900, 7.0));

  const auto hits = [&] {
    return gateway_.range_search("obs", "effective", Value(std::int64_t{0}),
                                 Value(std::int64_t{1000}));
  };
  ASSERT_EQ(hits().size(), 3u);
  const std::uint64_t hits_before = gateway_.cache()->hits();
  // The repeat serves decrypted documents (and OPE bound labels) from the
  // cache — and still returns the same result set.
  ASSERT_EQ(hits().size(), 3u);
  EXPECT_GT(gateway_.cache()->hits(), hits_before);

  // A delete bumps the collection epoch: every cached document of "obs"
  // goes stale at once, so the next read cannot resurrect Carol.
  gateway_.remove("obs", gone);
  EXPECT_GE(gateway_.cache()->invalidations(), 1u);
  const auto after = hits();
  ASSERT_EQ(after.size(), 2u);
  for (const auto& d : after) EXPECT_NE(d.at("subject").as_string(), "Carol");
}

TEST_F(CachedGatewayFixture, UpdateInvalidatesCachedDocuments) {
  const DocId id = gateway_.insert("obs", make_obs("final", "Alice", 100, 5.0));
  EXPECT_EQ(gateway_.read("obs", id).at("status").as_string(), "final");

  Document updated = make_obs("amended", "Alice", 700, 8.0);
  updated.id = id;
  gateway_.update("obs", updated);
  // The pre-update blob was cached by the read; the epoch bump keeps it
  // from being served.
  EXPECT_EQ(gateway_.read("obs", id).at("status").as_string(), "amended");
}

TEST_F(CachedGatewayFixture, MitraTrapdoorCacheInvalidatedByKeywordUpdates) {
  gateway_.insert("obs", make_obs("final", "Alice", 100, 5.0));
  gateway_.insert("obs", make_obs("final", "Bob", 200, 6.0));

  // First search derives and caches the Mitra trapdoor addresses; the
  // repeat is served from the cache.
  ASSERT_EQ(gateway_.equality_search("obs", "subject", Value("Alice")).size(), 1u);
  const std::uint64_t hits_before = gateway_.cache()->hits();
  ASSERT_EQ(gateway_.equality_search("obs", "subject", Value("Alice")).size(), 1u);
  EXPECT_GT(gateway_.cache()->hits(), hits_before);

  // Inserting another Alice advances the Mitra keyword counter, which
  // changes the address set — send_update must have erased the cached
  // trapdoor, or this search would miss the new document.
  gateway_.insert("obs", make_obs("amended", "Alice", 300, 7.0));
  EXPECT_EQ(gateway_.equality_search("obs", "subject", Value("Alice")).size(), 2u);
}

class AdaptiveGatewayFixture : public CachedGatewayFixture {
 protected:
  AdaptiveGatewayFixture() : CachedGatewayFixture(true) {}
};

TEST_F(AdaptiveGatewayFixture, AdaptivePlanningKeepsResultsCorrect) {
  gateway_.insert("obs", make_obs("final", "Alice", 100, 5.0));
  gateway_.insert("obs", make_obs("final", "Bob", 500, 6.0));
  gateway_.insert("obs", make_obs("final", "Carol", 900, 7.0));
  ASSERT_NE(gateway_.cost_model(), nullptr);

  // Whatever the cost model picks — OPE, ORE, RangeBRC or the post-filter
  // plan — the result set must match the static answer, every time.
  for (int i = 0; i < 8; ++i) {
    const auto hits = gateway_.range_search(
        "obs", "effective", Value(std::int64_t{200}), Value(std::int64_t{800}));
    ASSERT_EQ(hits.size(), 1u) << "query " << i;
    EXPECT_EQ(hits[0].at("subject").as_string(), "Bob") << "query " << i;
  }

  // The plan carries the live annotation the selection table renders.
  const CollectionPlan& plan = gateway_.plan("obs");
  const FieldPlan& fp = plan.fields.at("effective");
  EXPECT_FALSE(fp.range_last_choice.empty());
  EXPECT_TRUE(fp.range_chosen_by == "static" || fp.range_chosen_by == "cost-model" ||
              fp.range_chosen_by == "hysteresis-hold")
      << fp.range_chosen_by;
  EXPECT_NE(plan.to_table().find(fp.range_chosen_by), std::string::npos);

  // And the other query families still resolve through their tactics.
  EXPECT_EQ(gateway_.equality_search("obs", "subject", Value("Alice")).size(), 1u);
  const AggregateResult avg =
      gateway_.aggregate("obs", "value", schema::Aggregate::kAverage);
  EXPECT_EQ(avg.count, 3u);
  EXPECT_NEAR(avg.value, 6.0, 1e-9);
}

}  // namespace
}  // namespace datablinder::core
