// Resilience-layer tests: scripted fault plans reproduce deterministically,
// the RPC retry loop honours backoff schedules and deadline budgets (fake
// clock — nothing here sleeps for real), the per-channel circuit breaker
// walks closed -> open -> half-open -> closed, retry/breaker events land in
// the gateway's PerfRegistry, and deferred-section failure paths leave no
// queued requests behind.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "core/wire.hpp"
#include "fhir/observation.hpp"
#include "net/channel.hpp"
#include "net/resilience.hpp"
#include "net/rpc.hpp"

namespace datablinder {
namespace {

using doc::Document;
using doc::Value;
namespace wire = core::wire;

/// Deterministic clock: sleeps advance time instantly and are recorded so
/// tests assert the exact backoff schedule.
class FakeClock : public net::RetryClock {
 public:
  std::uint64_t now_us() override { return now_; }
  void sleep_us(std::uint64_t us) override {
    now_ += us;
    sleeps.push_back(us);
  }

  std::uint64_t now_ = 0;
  std::vector<std::uint64_t> sleeps;
};

core::TacticRegistry& registry() {
  static core::TacticRegistry r = [] {
    core::TacticRegistry reg;
    core::register_builtin_tactics(reg);
    return reg;
  }();
  return r;
}

net::RpcServer& echo_server() {
  static net::RpcServer* server = [] {
    auto* s = new net::RpcServer;
    s->register_method("echo.get",
                       [](BytesView b) { return Bytes(b.begin(), b.end()); });
    return s;
  }();
  return *server;
}

// --- FaultPlan determinism ---------------------------------------------------

TEST(ResilienceTest, FaultPlanFailsExactTransferOrdinal) {
  net::Channel ch;
  net::FaultPlan plan;
  plan.fail_transfers = {3};
  ch.arm_fault_plan(plan);

  EXPECT_NO_THROW(ch.transfer_request(10, "a"));   // #1
  EXPECT_NO_THROW(ch.transfer_response(10, "a"));  // #2
  try {
    ch.transfer_request(10, "b");  // #3
    FAIL() << "expected injected fault";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
    EXPECT_NE(std::string(e.what()).find("transfer #3"), std::string::npos);
  }
  EXPECT_NO_THROW(ch.transfer_request(10, "b"));  // #4: plan clause spent
  EXPECT_EQ(ch.stats().faults_injected.load(), 1u);
  EXPECT_EQ(ch.transfers(), 4u);
}

TEST(ResilienceTest, FaultPlanMethodPrefixHonoursSkipAndCount) {
  net::Channel ch;
  net::FaultPlan plan;
  plan.method_faults = {{"det.insert", /*skip=*/1, /*count=*/1}};
  ch.arm_fault_plan(plan);

  // First match passes (skipped), second faults, third passes (count spent).
  EXPECT_NO_THROW(ch.transfer_request(10, "det.insert"));
  EXPECT_NO_THROW(ch.transfer_request(10, "doc.put"));  // prefix miss: untouched
  EXPECT_THROW(ch.transfer_request(10, "det.insert"), Error);
  EXPECT_NO_THROW(ch.transfer_request(10, "det.insert"));
  // Response legs never match method faults.
  EXPECT_NO_THROW(ch.transfer_response(10, "det.insert"));
  EXPECT_EQ(ch.stats().faults_injected.load(), 1u);
}

TEST(ResilienceTest, FaultPlanOutageWindowSelfHeals) {
  net::Channel ch;
  net::FaultPlan plan;
  plan.outages = {{/*first=*/2, /*length=*/3}};  // transfers 2,3,4 down
  ch.arm_fault_plan(plan);

  EXPECT_NO_THROW(ch.transfer_request(10, "m"));
  EXPECT_THROW(ch.transfer_request(10, "m"), Error);
  EXPECT_THROW(ch.transfer_request(10, "m"), Error);
  EXPECT_THROW(ch.transfer_request(10, "m"), Error);
  EXPECT_NO_THROW(ch.transfer_request(10, "m"));  // #5: healed
  EXPECT_EQ(ch.stats().faults_injected.load(), 3u);
}

TEST(ResilienceTest, SeededProbabilisticFaultsReproduce) {
  auto run = [](std::uint64_t seed) {
    net::ChannelConfig cfg;
    cfg.failure_probability = 0.5;
    cfg.fault_seed = seed;
    net::Channel ch(cfg);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      try {
        ch.transfer_request(8, "m");
        pattern += '.';
      } catch (const Error&) {
        pattern += 'x';
      }
    }
    return pattern;
  };
  EXPECT_EQ(run(99), run(99));  // same seed: identical fault sequence
  EXPECT_NE(run(99), run(100));
}

// --- Retry policy ------------------------------------------------------------

TEST(ResilienceTest, RetryReplaysSameBytesWithExponentialBackoff) {
  net::Channel ch;
  net::RpcClient rpc(echo_server(), ch);
  FakeClock clock;
  rpc.set_clock(&clock);

  net::RetryPolicy p;
  p.enabled = true;
  p.max_attempts = 4;
  p.initial_backoff_us = 1000;
  p.backoff_multiplier = 2.0;
  p.jitter = 0.0;
  p.retryable_methods = {"echo.get"};
  rpc.set_retry_policy(p);

  net::FaultPlan plan;
  plan.fail_transfers = {1, 2};  // first two attempts die on the request leg
  ch.arm_fault_plan(plan);

  const Bytes out = rpc.call("echo.get", to_bytes("payload"));
  EXPECT_EQ(to_string(out), "payload");
  ASSERT_EQ(clock.sleeps.size(), 2u);  // deterministic schedule, no jitter
  EXPECT_EQ(clock.sleeps[0], 1000u);
  EXPECT_EQ(clock.sleeps[1], 2000u);
  EXPECT_EQ(ch.stats().faults_injected.load(), 2u);
}

TEST(ResilienceTest, JitterIsSeededAndBounded) {
  auto schedule = [](std::uint64_t seed) {
    net::Channel ch;
    net::RpcClient rpc(echo_server(), ch);
    FakeClock clock;
    rpc.set_clock(&clock);
    net::RetryPolicy p;
    p.enabled = true;
    p.max_attempts = 4;
    p.initial_backoff_us = 10000;
    p.backoff_multiplier = 2.0;
    p.jitter = 0.5;
    p.jitter_seed = seed;
    p.retryable_methods = {"echo.get"};
    rpc.set_retry_policy(p);
    net::FaultPlan plan;
    plan.fail_transfers = {1, 2, 3};
    ch.arm_fault_plan(plan);
    EXPECT_EQ(to_string(rpc.call("echo.get", to_bytes("x"))), "x");
    return clock.sleeps;
  };

  const auto a = schedule(42);
  const auto b = schedule(42);
  EXPECT_EQ(a, b);  // fixed seed: reproducible backoff
  ASSERT_EQ(a.size(), 3u);
  const std::uint64_t nominal[] = {10000, 20000, 40000};
  for (int i = 0; i < 3; ++i) {
    EXPECT_LE(a[i], nominal[i]);
    EXPECT_GE(a[i], nominal[i] / 2);  // jitter cuts at most 50%
  }
}

TEST(ResilienceTest, DeadlineBudgetAbandonsRetry) {
  net::Channel ch;
  net::RpcClient rpc(echo_server(), ch);
  FakeClock clock;
  rpc.set_clock(&clock);
  std::map<std::string, std::uint64_t> events;
  rpc.set_metrics_hook(
      [&](const char* series, std::uint64_t v) { events[series] += v; });

  net::RetryPolicy p;
  p.enabled = true;
  p.max_attempts = 10;
  p.initial_backoff_us = 1000;
  p.backoff_multiplier = 2.0;
  p.jitter = 0.0;
  p.deadline_us = 2500;  // allows the first 1000us backoff, not the 2000us one
  p.retryable_methods = {"echo.get"};
  rpc.set_retry_policy(p);

  net::FaultPlan plan;
  plan.outages = {{1, 1000}};  // hard down
  ch.arm_fault_plan(plan);

  try {
    rpc.call("echo.get", to_bytes("x"));
    FAIL() << "expected unavailable";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
  }
  // Attempt 1 fails, sleeps 1000; attempt 2 fails; the next 2000us backoff
  // would overrun 2500us total, so the call is abandoned without sleeping.
  ASSERT_EQ(clock.sleeps.size(), 1u);
  EXPECT_EQ(clock.sleeps[0], 1000u);
  EXPECT_EQ(clock.now_, 1000u);
  EXPECT_EQ(events["net.retry.deadline"], 1u);
  EXPECT_EQ(events["net.retry.attempt"], 1u);
}

TEST(ResilienceTest, NonWhitelistedMethodsFailFast) {
  net::Channel ch;
  net::RpcClient rpc(echo_server(), ch);
  FakeClock clock;
  rpc.set_clock(&clock);

  net::RetryPolicy p = net::RetryPolicy::standard();  // echo.get not listed
  p.jitter = 0.0;
  rpc.set_retry_policy(p);

  net::FaultPlan plan;
  plan.fail_transfers = {1};
  ch.arm_fault_plan(plan);

  EXPECT_THROW(rpc.call("echo.get", to_bytes("x")), Error);
  EXPECT_TRUE(clock.sleeps.empty());  // no retry attempted
  EXPECT_EQ(ch.transfers(), 1u);
}

TEST(ResilienceTest, StandardWhitelistCoversReadsAndKeyedOverwrites) {
  // The whitelist is the single gate for every re-send mechanism: plain
  // retries, replica failover after send, and hedged reads all consult it.
  const net::RetryPolicy p = net::RetryPolicy::standard();
  // Reads (trivially replayable), including the batched retrieval and
  // trapdoor-based search methods.
  for (const char* m :
       {"doc.get", "doc.mget", "doc.list", "det.search", "mitra.search",
        "mitrasl.search", "mitrasl.get_counter", "sophos.search", "iex.search",
        "zmf.search", "ope.range", "ore.range", "agg.sum", "admin.digest"}) {
    EXPECT_TRUE(p.retryable(m)) << m;
  }
  // Updates whose handlers are keyed overwrites absorb byte-identical replay.
  for (const char* m : {"doc.put", "det.insert", "mitra.update", "agg.insert",
                        "sophos.update", "rpc.batch"}) {
    EXPECT_TRUE(p.retryable(m)) << m;
  }
  // Anything else fails fast — unknown third-party methods are presumed
  // non-idempotent.
  for (const char* m : {"echo.get", "custom.append", "kms.rotate", ""}) {
    EXPECT_FALSE(p.retryable(m)) << m;
  }
}

TEST(ResilienceTest, NonWhitelistedMethodIsNeverResentAfterSend) {
  // The dangerous case: the request leg SHIPPED (the server may have
  // executed it) and the response leg faulted. For a method outside the
  // whitelist the client must surface the failure after exactly one
  // server-side execution — a blind re-send could double-apply it.
  net::RpcServer server;
  int calls = 0;
  server.register_method("custom.append", [&calls](BytesView b) {
    ++calls;
    return Bytes(b.begin(), b.end());
  });
  net::Channel ch;
  net::RpcClient rpc(server, ch);
  FakeClock clock;
  rpc.set_clock(&clock);
  rpc.set_retry_policy(net::RetryPolicy::standard());  // custom.* not listed

  net::FaultPlan plan;
  plan.fail_transfers = {2};  // ordinal 1 = request leg, 2 = response leg
  ch.arm_fault_plan(plan);

  try {
    rpc.call("custom.append", to_bytes("x"));
    FAIL() << "expected the lost response to surface";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
  }
  EXPECT_EQ(calls, 1);                // executed exactly once
  EXPECT_TRUE(clock.sleeps.empty());  // and never re-sent
}

TEST(ResilienceTest, TypedServerErrorsAreNotRetried) {
  net::RpcServer server;
  int calls = 0;
  server.register_method("always.fails", [&calls](BytesView) -> Bytes {
    ++calls;
    throw_error(ErrorCode::kNotFound, "no such thing");
  });
  net::Channel ch;
  net::RpcClient rpc(server, ch);
  FakeClock clock;
  rpc.set_clock(&clock);
  net::RetryPolicy p;
  p.enabled = true;
  p.retryable_methods = {"always.fails"};
  rpc.set_retry_policy(p);

  // A typed error is a delivered response — retrying cannot help.
  try {
    rpc.call("always.fails", {});
    FAIL() << "expected not-found";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(clock.sleeps.empty());
}

// --- Circuit breaker ---------------------------------------------------------

TEST(ResilienceTest, BreakerWalksClosedOpenHalfOpenClosed) {
  net::Channel ch;
  net::RpcClient rpc(echo_server(), ch);
  FakeClock clock;
  rpc.set_clock(&clock);

  net::BreakerConfig bc;
  bc.enabled = true;
  bc.failure_threshold = 2;
  bc.open_cooldown_us = 1000;
  ch.breaker().configure(bc);

  net::FaultPlan plan;
  plan.outages = {{1, 3}};  // transfers 1..3 down, healed from #4
  ch.arm_fault_plan(plan);

  using State = net::CircuitBreaker::State;
  EXPECT_EQ(ch.breaker().state(), State::kClosed);
  EXPECT_THROW(rpc.call("echo.get", to_bytes("x")), Error);  // failure 1
  EXPECT_EQ(ch.breaker().state(), State::kClosed);
  EXPECT_THROW(rpc.call("echo.get", to_bytes("x")), Error);  // failure 2: trips
  EXPECT_EQ(ch.breaker().state(), State::kOpen);
  EXPECT_EQ(ch.breaker().trips(), 1u);

  // Open: calls shed without touching the channel.
  const std::uint64_t before = ch.transfers();
  try {
    rpc.call("echo.get", to_bytes("x"));
    FAIL() << "expected breaker rejection";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
    EXPECT_NE(std::string(e.what()).find("circuit breaker open"), std::string::npos);
  }
  EXPECT_EQ(ch.transfers(), before);
  EXPECT_EQ(ch.breaker().rejections(), 1u);

  // Cooldown elapses; the half-open probe hits the last outage transfer (#3)
  // and fails: straight back to open.
  clock.now_ += 1500;
  EXPECT_THROW(rpc.call("echo.get", to_bytes("x")), Error);
  EXPECT_EQ(ch.breaker().state(), State::kOpen);
  EXPECT_EQ(ch.breaker().trips(), 2u);

  // Second probe after another cooldown finds the channel healed: closed.
  clock.now_ += 1500;
  EXPECT_EQ(to_string(rpc.call("echo.get", to_bytes("x"))), "x");
  EXPECT_EQ(ch.breaker().state(), State::kClosed);
}

// --- Gateway integration: metrics + retried insert ---------------------------

TEST(ResilienceTest, GatewayRetriesInsertAndRecordsMetrics) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;

  core::GatewayConfig cfg;
  cfg.tactic_params = {{"paillier_modulus_bits", "256"},
                       {"sophos_modulus_bits", "512"}};
  cfg.retry = net::RetryPolicy::standard();
  cfg.retry.jitter_seed = 7;
  cfg.retry.initial_backoff_us = 10;  // keep the real-clock sleeps tiny
  cfg.retry.max_backoff_us = 100;
  cfg.breaker.enabled = true;
  cfg.breaker.failure_threshold = 50;  // present but not tripping here
  core::Gateway gateway(rpc, kms, local, registry(), cfg);
  gateway.register_schema(fhir::observation_schema("obs"));

  // Kill two doc.put request legs mid-insert; the retry layer must make
  // the insert succeed end to end anyway.
  net::FaultPlan plan;
  plan.method_faults = {{"doc.put", /*skip=*/0, /*count=*/2}};
  channel.set_fault_plan(plan);

  fhir::ObservationGenerator gen(3);
  Document d = gen.next();
  d.set("subject", Value("resilient-patient"));
  EXPECT_NO_THROW(gateway.insert("obs", d));
  channel.clear_fault_plan();

  EXPECT_EQ(channel.stats().faults_injected.load(), 2u);
  EXPECT_GE(gateway.perf().counter("net.retry.attempt"), 2u);
  EXPECT_GT(gateway.perf().counter("net.retry.backoff_us"), 0u);
  EXPECT_EQ(gateway.perf().counter("net.retry.giveup"), 0u);
  // Exactly-once: the retried insert produced one document, one index entry.
  EXPECT_EQ(
      gateway.equality_search("obs", "subject", Value("resilient-patient")).size(),
      1u);
  // The counter table renders in the perf report.
  EXPECT_NE(gateway.perf().report().find("net.retry.attempt"), std::string::npos);
}

// --- Deferred-section failure hygiene ----------------------------------------

TEST(ResilienceTest, FlushFailureLeavesNoQueueAndSectionCanRestart) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);

  auto put = [&](const std::string& id) {
    rpc.call("doc.put", wire::pack({{"col", Value("c")},
                                    {"id", Value(id)},
                                    {"blob", Value(Bytes{1, 2, 3})}}));
  };

  rpc.begin_deferred({"doc.put"});
  put("a");
  channel.close();
  EXPECT_THROW(rpc.flush_deferred(), Error);
  // The failed flush ended the section and dropped the queue.
  EXPECT_FALSE(rpc.in_deferred_section());
  channel.reopen();

  // A fresh section works immediately and ships only its own requests.
  rpc.begin_deferred({"doc.put"});
  put("b");
  EXPECT_EQ(rpc.flush_deferred(), 1u);
  EXPECT_FALSE(rpc.in_deferred_section());
  EXPECT_NO_THROW(rpc.call("doc.get", wire::pack({{"col", Value("c")},
                                                  {"id", Value("b")}})));
  // "a" was dropped with the failed flush, never silently delivered.
  EXPECT_THROW(rpc.call("doc.get", wire::pack({{"col", Value("c")},
                                               {"id", Value("a")}})),
               Error);
}

TEST(ResilienceTest, TakeDeferredCapturesQueueAndBatchReplayIsIdempotent) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);

  rpc.begin_deferred({"doc.put"});
  rpc.call("doc.put", wire::pack({{"col", Value("c")},
                                  {"id", Value("r")},
                                  {"blob", Value(Bytes{9})}}));
  const std::vector<net::Request> captured = rpc.take_deferred();
  EXPECT_FALSE(rpc.in_deferred_section());
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].method, "doc.put");

  // Ship, then replay the identical bytes: keyed overwrite, same state.
  EXPECT_EQ(rpc.send_batch(captured), 1u);
  EXPECT_EQ(rpc.send_batch(captured), 1u);
  const Bytes reply = rpc.call(
      "doc.get", wire::pack({{"col", Value("c")}, {"id", Value("r")}}));
  EXPECT_EQ(wire::get_bin(wire::unpack(reply), "blob"), (Bytes{9}));
}

}  // namespace
}  // namespace datablinder
