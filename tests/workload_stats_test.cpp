// Workload statistics tests: the latency percentiles the §5.2 table is
// built from must be computed correctly, or every reproduced number lies.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workload/stats.hpp"

namespace datablinder::workload {
namespace {

TEST(LatencyRecorderTest, EmptySummaryIsZero) {
  const LatencySummary s = LatencyRecorder().summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean_us, 0.0);
  EXPECT_EQ(s.p99_us, 0.0);
}

TEST(LatencyRecorderTest, SingleSample) {
  LatencyRecorder r;
  r.record_ns(5000);  // 5 us
  const LatencySummary s = r.summarize();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean_us, 5.0);
  EXPECT_DOUBLE_EQ(s.p50_us, 5.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 5.0);
  EXPECT_DOUBLE_EQ(s.max_us, 5.0);
}

TEST(LatencyRecorderTest, PercentilesOnKnownDistribution) {
  LatencyRecorder r;
  // 1..100 us — percentiles are directly readable.
  for (int i = 1; i <= 100; ++i) r.record_ns(static_cast<std::uint64_t>(i) * 1000);
  const LatencySummary s = r.summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean_us, 50.5);
  EXPECT_NEAR(s.p50_us, 50.0, 1.0);
  EXPECT_NEAR(s.p75_us, 75.0, 1.0);
  EXPECT_NEAR(s.p99_us, 99.0, 1.0);
  EXPECT_DOUBLE_EQ(s.max_us, 100.0);
}

TEST(LatencyRecorderTest, OrderIndependence) {
  // Percentiles must not depend on arrival order (samples merge from
  // concurrent user threads in arbitrary interleavings).
  LatencyRecorder forward, backward;
  for (int i = 1; i <= 500; ++i) forward.record_ns(static_cast<std::uint64_t>(i));
  for (int i = 500; i >= 1; --i) backward.record_ns(static_cast<std::uint64_t>(i));
  const auto f = forward.summarize();
  const auto b = backward.summarize();
  EXPECT_DOUBLE_EQ(f.p50_us, b.p50_us);
  EXPECT_DOUBLE_EQ(f.p99_us, b.p99_us);
  EXPECT_DOUBLE_EQ(f.mean_us, b.mean_us);
}

TEST(LatencyRecorderTest, MergeEqualsUnion) {
  DetRng rng(8);
  LatencyRecorder a, b, merged_ref;
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t v = rng.uniform(1000000);
    (i % 2 ? a : b).record_ns(v);
    merged_ref.record_ns(v);
  }
  LatencyRecorder merged;
  merged.merge(a);
  merged.merge(b);
  const auto m = merged.summarize();
  const auto ref = merged_ref.summarize();
  EXPECT_EQ(m.count, ref.count);
  EXPECT_DOUBLE_EQ(m.p50_us, ref.p50_us);
  EXPECT_DOUBLE_EQ(m.p75_us, ref.p75_us);
  EXPECT_DOUBLE_EQ(m.p99_us, ref.p99_us);
  EXPECT_DOUBLE_EQ(m.mean_us, ref.mean_us);
}

TEST(LatencyRecorderTest, SkewedTailShowsInP99NotP50) {
  LatencyRecorder r;
  for (int i = 0; i < 99; ++i) r.record_ns(1000);  // 1 us baseline
  r.record_ns(10000000);                            // one 10 ms outlier
  const auto s = r.summarize();
  EXPECT_NEAR(s.p50_us, 1.0, 0.01);
  EXPECT_GT(s.p99_us, 1000.0);  // the Paillier-style tail is visible
}

TEST(LatencyRecorderTest, RenderedSummaryContainsFields) {
  LatencyRecorder r;
  r.record_ns(1500000);
  const std::string text = to_string(r.summarize());
  EXPECT_NE(text.find("count=1"), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace datablinder::workload
