// SSE scheme tests: Mitra, Sophos, IEX-2Lev, IEX-ZMF — search correctness
// against a plaintext reference, dynamic updates, forward-privacy
// structure, and the shared index plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "sse/iex2lev.hpp"
#include "sse/iexzmf.hpp"
#include "sse/index_common.hpp"
#include "sse/mitra.hpp"
#include "sse/sophos.hpp"

namespace datablinder::sse {
namespace {

std::vector<DocId> sorted(std::vector<DocId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(EncryptedDictTest, BasicOperations) {
  EncryptedDict d;
  d.put(Bytes{1, 2}, Bytes{3, 4, 5});
  EXPECT_TRUE(d.contains(Bytes{1, 2}));
  EXPECT_EQ(d.get(Bytes{1, 2}), (Bytes{3, 4, 5}));
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.storage_bytes(), 5u);
  d.put(Bytes{1, 2}, Bytes{9});  // overwrite shrinks accounting
  EXPECT_EQ(d.storage_bytes(), 3u);
  EXPECT_TRUE(d.erase(Bytes{1, 2}));
  EXPECT_FALSE(d.erase(Bytes{1, 2}));
  EXPECT_EQ(d.storage_bytes(), 0u);
  EXPECT_FALSE(d.get(Bytes{7}).has_value());
}

TEST(IdListCodecTest, RoundTripAndErrors) {
  const std::vector<DocId> ids = {"a", "doc-123", "", std::string(300, 'x')};
  EXPECT_EQ(decode_id_list(encode_id_list(ids)), ids);
  EXPECT_EQ(decode_id_list(encode_id_list({})), std::vector<DocId>{});
  EXPECT_THROW(decode_id_list(Bytes{0, 0}), Error);
}

TEST(KeywordCountersTest, SerializeRoundTrip) {
  KeywordCounters c;
  c.increment("alpha");
  c.increment("alpha");
  c.increment("beta");
  const KeywordCounters back = KeywordCounters::deserialize(c.serialize());
  EXPECT_EQ(back.get("alpha"), 2u);
  EXPECT_EQ(back.get("beta"), 1u);
  EXPECT_EQ(back.get("gamma"), 0u);
  EXPECT_EQ(back.distinct_keywords(), 2u);
}

// --- Mitra ------------------------------------------------------------------

TEST(MitraTest, SearchFindsAllAddedDocuments) {
  MitraClient client(Bytes(32, 1));
  MitraServer server;
  for (int i = 0; i < 20; ++i) {
    server.apply_update(client.update(MitraOp::kAdd, "diabetes", "doc" + std::to_string(i)));
  }
  server.apply_update(client.update(MitraOp::kAdd, "cancer", "docX"));

  const auto results =
      client.resolve("diabetes", server.search(client.search_token("diabetes")));
  EXPECT_EQ(results.size(), 20u);
  const auto other = client.resolve("cancer", server.search(client.search_token("cancer")));
  EXPECT_EQ(other, std::vector<DocId>{"docX"});
  EXPECT_TRUE(client.search_token("unknown").addresses.empty());
}

TEST(MitraTest, DeletionsCancelAdditions) {
  MitraClient client(Bytes(32, 2));
  MitraServer server;
  server.apply_update(client.update(MitraOp::kAdd, "w", "a"));
  server.apply_update(client.update(MitraOp::kAdd, "w", "b"));
  server.apply_update(client.update(MitraOp::kDelete, "w", "a"));

  const auto results = client.resolve("w", server.search(client.search_token("w")));
  EXPECT_EQ(results, std::vector<DocId>{"b"});

  // Re-adding after deletion resurrects the id.
  server.apply_update(client.update(MitraOp::kAdd, "w", "a"));
  const auto again = client.resolve("w", server.search(client.search_token("w")));
  EXPECT_EQ(sorted(again), (std::vector<DocId>{"a", "b"}));
}

TEST(MitraTest, ForwardPrivacyStructure) {
  // Forward privacy (structural check): the address of a future update is
  // unpredictable from everything the server has seen — concretely, new
  // addresses never collide with previously issued search-token addresses.
  MitraClient client(Bytes(32, 3));
  MitraServer server;
  for (int i = 0; i < 10; ++i) {
    server.apply_update(client.update(MitraOp::kAdd, "kw", "d" + std::to_string(i)));
  }
  const auto token = client.search_token("kw");
  const std::set<Bytes> seen(token.addresses.begin(), token.addresses.end());
  const auto future = client.update(MitraOp::kAdd, "kw", "dnew");
  EXPECT_EQ(seen.count(future.address), 0u);
}

TEST(MitraTest, StateExportImportPreservesSearchability) {
  MitraClient client(Bytes(32, 4));
  MitraServer server;
  server.apply_update(client.update(MitraOp::kAdd, "w", "doc1"));
  server.apply_update(client.update(MitraOp::kAdd, "w", "doc2"));

  MitraClient recovered(Bytes(32, 4));
  recovered.import_state(client.export_state());
  const auto results =
      recovered.resolve("w", server.search(recovered.search_token("w")));
  EXPECT_EQ(sorted(results), (std::vector<DocId>{"doc1", "doc2"}));
}

// --- Sophos ------------------------------------------------------------------

class SophosFixture : public ::testing::Test {
 protected:
  // One RSA keygen shared across tests (expensive).
  static SophosClient& client() {
    static SophosClient c(Bytes(32, 5), 512);
    return c;
  }
};

TEST_F(SophosFixture, SearchRecoversInsertedIds) {
  SophosServer server(client().public_params());
  for (int i = 0; i < 8; ++i) {
    server.apply_update(client().update("hypertension", "doc" + std::to_string(i)));
  }
  const auto token = client().search_token("hypertension");
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(token->count, 8u);
  const auto ids = server.search(*token);
  EXPECT_EQ(sorted(ids), sorted({"doc0", "doc1", "doc2", "doc3", "doc4", "doc5",
                                 "doc6", "doc7"}));
}

TEST_F(SophosFixture, UnknownKeywordHasNoToken) {
  EXPECT_FALSE(client().search_token("never-inserted").has_value());
}

TEST_F(SophosFixture, TokenChainWalksBackwards) {
  // Each update's UT is unlinkable until a search reveals the chain: check
  // that a server missing the latest update still finds all earlier ones.
  SophosServer server(client().public_params());
  server.apply_update(client().update("chain", "old1"));
  server.apply_update(client().update("chain", "old2"));
  const auto pre_token = client().search_token("chain");

  // A new update lands only at a second server (simulating forward privacy:
  // the first server cannot derive the new UT from what it has).
  const auto new_update = client().update("chain", "new3");
  const auto ids_without_new = server.search(*pre_token);
  EXPECT_EQ(sorted(ids_without_new), sorted({"old1", "old2"}));

  server.apply_update(new_update);
  const auto full = server.search(*client().search_token("chain"));
  EXPECT_EQ(sorted(full), sorted({"new3", "old1", "old2"}));
}

// --- IEX-2Lev ------------------------------------------------------------------

struct IexWorld {
  Iex2LevClient client{Bytes(32, 6)};
  Iex2LevServer server;

  void add(const DocId& id, const std::vector<std::string>& kws) {
    for (const auto& t : client.update(IexOp::kAdd, kws, id)) server.apply_update(t);
  }
  void del(const DocId& id, const std::vector<std::string>& kws) {
    for (const auto& t : client.update(IexOp::kDelete, kws, id)) server.apply_update(t);
  }
  std::vector<DocId> query(const BoolQuery& q) { return sorted(client.query(q, server)); }
};

TEST(Iex2LevTest, SingleKeywordSearch) {
  IexWorld w;
  w.add("d1", {"status:final", "code:glucose"});
  w.add("d2", {"status:final", "code:sodium"});
  w.add("d3", {"status:amended", "code:glucose"});
  EXPECT_EQ(w.query({{{"status:final"}}}), (std::vector<DocId>{"d1", "d2"}));
  EXPECT_EQ(w.query({{{"code:glucose"}}}), (std::vector<DocId>{"d1", "d3"}));
  EXPECT_TRUE(w.query({{{"nothing"}}}).empty());
}

TEST(Iex2LevTest, ConjunctionUsesCrossKeywordIndex) {
  IexWorld w;
  w.add("d1", {"status:final", "code:glucose", "value:63"});
  w.add("d2", {"status:final", "code:sodium", "value:63"});
  w.add("d3", {"status:amended", "code:glucose", "value:70"});
  EXPECT_EQ(w.query({{{"status:final", "code:glucose"}}}), (std::vector<DocId>{"d1"}));
  EXPECT_EQ(w.query({{{"status:final", "value:63"}}}),
            (std::vector<DocId>{"d1", "d2"}));
  EXPECT_EQ(w.query({{{"status:final", "code:glucose", "value:63"}}}),
            (std::vector<DocId>{"d1"}));
  EXPECT_TRUE(w.query({{{"status:amended", "code:sodium"}}}).empty());
}

TEST(Iex2LevTest, DisjunctionUnionsConjunctions) {
  IexWorld w;
  w.add("d1", {"a", "b"});
  w.add("d2", {"c"});
  w.add("d3", {"a", "c"});
  EXPECT_EQ(w.query({{{"a", "b"}, {"c"}}}), (std::vector<DocId>{"d1", "d2", "d3"}));
}

TEST(Iex2LevTest, DeleteRemovesFromAllIndexes) {
  IexWorld w;
  w.add("d1", {"a", "b"});
  w.add("d2", {"a", "b"});
  w.del("d1", {"a", "b"});
  EXPECT_EQ(w.query({{{"a"}}}), (std::vector<DocId>{"d2"}));
  EXPECT_EQ(w.query({{{"a", "b"}}}), (std::vector<DocId>{"d2"}));
}

TEST(Iex2LevTest, RandomizedAgainstPlaintextReference) {
  IexWorld w;
  DetRng rng(17);
  const std::vector<std::string> universe = {"k0", "k1", "k2", "k3", "k4"};
  std::vector<std::pair<DocId, std::set<std::string>>> reference;
  for (int i = 0; i < 60; ++i) {
    std::set<std::string> kws;
    const std::size_t n = 1 + rng.uniform(universe.size());
    while (kws.size() < n) kws.insert(universe[rng.uniform(universe.size())]);
    const DocId id = "doc" + std::to_string(i);
    w.add(id, {kws.begin(), kws.end()});
    reference.emplace_back(id, std::move(kws));
  }
  for (int trial = 0; trial < 20; ++trial) {
    std::set<std::string> conj;
    const std::size_t n = 1 + rng.uniform(3);
    while (conj.size() < n) conj.insert(universe[rng.uniform(universe.size())]);
    std::vector<DocId> expected;
    for (const auto& [id, kws] : reference) {
      if (std::includes(kws.begin(), kws.end(), conj.begin(), conj.end())) {
        expected.push_back(id);
      }
    }
    BoolQuery q;
    q.dnf.push_back({conj.begin(), conj.end()});
    EXPECT_EQ(w.query(q), sorted(expected)) << "trial " << trial;
  }
}

// --- IEX-ZMF ------------------------------------------------------------------

struct ZmfWorld {
  IexZmfClient client{Bytes(32, 7)};
  IexZmfServer server;

  void add(const DocId& id, const std::vector<std::string>& kws) {
    for (const auto& t : client.update(IexOp::kAdd, kws, id)) server.apply_update(t);
  }
  std::vector<DocId> query(const BoolQuery& q) { return sorted(client.query(q, server)); }
};

TEST(IexZmfTest, ConjunctionViaFilters) {
  ZmfWorld w;
  w.add("d1", {"status:final", "code:glucose"});
  w.add("d2", {"status:final", "code:sodium"});
  w.add("d3", {"status:amended", "code:glucose"});
  const auto hits = w.query({{{"status:final", "code:glucose"}}});
  // Bloom filters admit false positives but never false negatives.
  EXPECT_TRUE(std::count(hits.begin(), hits.end(), "d1") == 1);
  EXPECT_TRUE(std::count(hits.begin(), hits.end(), "d3") == 0);  // wrong first keyword list
}

TEST(IexZmfTest, NoFalseNegativesRandomized) {
  ZmfWorld w;
  DetRng rng(23);
  const std::vector<std::string> universe = {"u0", "u1", "u2", "u3", "u4", "u5"};
  std::vector<std::pair<DocId, std::set<std::string>>> reference;
  for (int i = 0; i < 50; ++i) {
    std::set<std::string> kws;
    const std::size_t n = 2 + rng.uniform(3);
    while (kws.size() < n) kws.insert(universe[rng.uniform(universe.size())]);
    const DocId id = "doc" + std::to_string(i);
    w.add(id, {kws.begin(), kws.end()});
    reference.emplace_back(id, std::move(kws));
  }
  for (int trial = 0; trial < 20; ++trial) {
    const std::string a = universe[rng.uniform(universe.size())];
    const std::string b = universe[rng.uniform(universe.size())];
    BoolQuery q;
    q.dnf.push_back({a, b});
    const auto hits = w.query(q);
    for (const auto& [id, kws] : reference) {
      if (kws.count(a) && kws.count(b)) {
        EXPECT_TRUE(std::binary_search(hits.begin(), hits.end(), id))
            << "missing " << id << " for " << a << " AND " << b;
      }
    }
  }
}

TEST(IexZmfTest, SpaceVsPairIndexTradeoff) {
  // The design claim behind Table 2's 2Lev/ZMF contrast: with many keywords
  // per document, ZMF's per-entry filters use less cloud storage than
  // 2Lev's quadratic pair expansion.
  IexWorld lev;
  ZmfWorld zmf;
  DetRng rng(31);
  const std::vector<std::string> universe = {"a", "b", "c", "d", "e", "f", "g", "h"};
  for (int i = 0; i < 40; ++i) {
    std::vector<std::string> kws(universe.begin(), universe.end());  // 8 kws/doc
    const DocId id = "doc" + std::to_string(i);
    lev.add(id, kws);
    zmf.add(id, kws);
  }
  EXPECT_LT(zmf.server.storage_bytes(), lev.server.dict().storage_bytes());
}

TEST(IexZmfTest, RejectsBadParams) {
  EXPECT_THROW(IexZmfClient(Bytes(32, 1), ZmfFilterParams{0, 4}), Error);
  EXPECT_THROW(IexZmfClient(Bytes(32, 1), ZmfFilterParams{12, 4}), Error);
  EXPECT_THROW(IexZmfClient(Bytes(32, 1), ZmfFilterParams{256, 0}), Error);
  EXPECT_THROW(IexZmfClient(Bytes{}, ZmfFilterParams{}), Error);
}

}  // namespace
}  // namespace datablinder::sse
