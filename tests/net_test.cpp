// Network substrate tests: message framing, channel accounting/faults, RPC
// dispatch and error propagation.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "common/stopwatch.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"
#include "net/rpc.hpp"

namespace datablinder::net {
namespace {

TEST(MessageTest, RequestRoundTrip) {
  Request r;
  r.method = "det.search";
  r.payload = Bytes{1, 2, 3};
  const Request back = Request::deserialize(r.serialize());
  EXPECT_EQ(back.method, "det.search");
  EXPECT_EQ(back.payload, (Bytes{1, 2, 3}));
}

TEST(MessageTest, ResponseRoundTrips) {
  const Response ok = Response::success(Bytes{9, 8});
  const Response back = Response::deserialize(ok.serialize());
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.payload, (Bytes{9, 8}));

  const Response err = Response::failure(ErrorCode::kNotFound, "missing doc");
  const Response eback = Response::deserialize(err.serialize());
  EXPECT_FALSE(eback.ok);
  EXPECT_EQ(eback.error, ErrorCode::kNotFound);
  EXPECT_EQ(eback.error_message, "missing doc");
}

TEST(MessageTest, MalformedRejected) {
  EXPECT_THROW(Request::deserialize(Bytes{0, 0}), Error);
  EXPECT_THROW(Response::deserialize(Bytes{}), Error);
  Bytes extra = Response::success({}).serialize();
  extra.push_back(1);
  EXPECT_THROW(Response::deserialize(extra), Error);
}

TEST(ChannelTest, AccountsBytesAndRoundTrips) {
  Channel ch;
  ch.transfer_request(100);
  ch.transfer_response(50);
  ch.transfer_request(10);
  ch.transfer_response(5);
  EXPECT_EQ(ch.stats().bytes_sent.load(), 110u);
  EXPECT_EQ(ch.stats().bytes_received.load(), 55u);
  EXPECT_EQ(ch.stats().round_trips.load(), 2u);
  ch.stats().reset();
  EXPECT_EQ(ch.stats().round_trips.load(), 0u);
}

TEST(ChannelTest, LatencyIsApplied) {
  ChannelConfig cfg;
  cfg.one_way_latency_us = 2000;
  Channel ch(cfg);
  Stopwatch sw;
  ch.transfer_request(10);
  ch.transfer_response(10);
  EXPECT_GE(sw.elapsed_us(), 3500.0);  // ~2 x 2ms, scheduler slack allowed
}

TEST(ChannelTest, BandwidthDelaysLargeTransfers) {
  ChannelConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1000000;  // 1 MB/s
  Channel ch(cfg);
  Stopwatch sw;
  ch.transfer_request(10000);  // => 10ms serialization delay
  EXPECT_GE(sw.elapsed_us(), 8000.0);
}

TEST(ChannelTest, ClosedChannelFails) {
  Channel ch;
  ch.close();
  EXPECT_THROW(ch.transfer_request(1), Error);
  ch.reopen();
  EXPECT_NO_THROW(ch.transfer_request(1));
}

TEST(ChannelTest, FaultInjectionFiresEventually) {
  ChannelConfig cfg;
  cfg.failure_probability = 0.5;
  Channel ch(cfg);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    try {
      ch.transfer_request(1);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
      ++failures;
    }
  }
  EXPECT_GT(failures, 20);
  EXPECT_LT(failures, 180);
}

TEST(RpcTest, DispatchAndErrorPropagation) {
  RpcServer server;
  server.register_method("echo", [](BytesView p) { return Bytes(p.begin(), p.end()); });
  server.register_method("boom", [](BytesView) -> Bytes {
    throw_error(ErrorCode::kSchemaViolation, "bad document");
  });
  EXPECT_THROW(server.register_method("echo", [](BytesView) { return Bytes{}; }), Error);
  EXPECT_EQ(server.method_count(), 2u);

  Channel ch;
  RpcClient client(server, ch);
  EXPECT_EQ(client.call("echo", Bytes{4, 2}), (Bytes{4, 2}));

  try {
    client.call("boom", {});
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSchemaViolation);  // code crosses the wire
  }

  try {
    client.call("unknown", {});
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
}

TEST(RpcTest, NonDataBlinderExceptionsBecomeInternal) {
  RpcServer server;
  server.register_method("std", [](BytesView) -> Bytes {
    throw std::runtime_error("plain std failure");
  });
  Channel ch;
  RpcClient client(server, ch);
  try {
    client.call("std", {});
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
  }
}

}  // namespace
}  // namespace datablinder::net
