// Document model, JSON codec and binary wire codec tests.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "doc/binary_codec.hpp"
#include "doc/json.hpp"
#include "doc/value.hpp"

namespace datablinder::doc {
namespace {

TEST(ValueTest, TypeAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(std::int64_t{42}).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Value(std::int64_t{3}).as_double(), 3.0);  // widening
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_EQ(Value(Bytes{1, 2}).as_binary(), (Bytes{1, 2}));
  EXPECT_THROW(Value("hi").as_int(), Error);
  EXPECT_THROW(Value(std::int64_t{1}).as_string(), Error);
}

TEST(ValueTest, ScalarBytesAreTypeTagged) {
  // int 5 and string "5" must never produce the same keyword/ciphertext.
  EXPECT_NE(Value(std::int64_t{5}).scalar_bytes(), Value("5").scalar_bytes());
  EXPECT_NE(Value(true).scalar_bytes(), Value(std::int64_t{1}).scalar_bytes());
  EXPECT_THROW(Value(Array{}).scalar_bytes(), Error);
  EXPECT_THROW(Value(Object{}).scalar_bytes(), Error);
}

TEST(DocumentTest, FieldAccess) {
  Document d;
  d.id = "x";
  d.set("a", Value(std::int64_t{1}));
  EXPECT_TRUE(d.has("a"));
  EXPECT_FALSE(d.has("b"));
  EXPECT_EQ(d.at("a").as_int(), 1);
  EXPECT_THROW(d.at("b"), Error);
}

TEST(JsonTest, SerializeBasics) {
  Object obj;
  obj["s"] = Value("he\"llo\n");
  obj["i"] = Value(std::int64_t{-7});
  obj["d"] = Value(1.5);
  obj["b"] = Value(true);
  obj["n"] = Value(nullptr);
  obj["arr"] = Value(Array{Value(std::int64_t{1}), Value("x")});
  EXPECT_EQ(to_json(Value(obj)),
            R"({"arr":[1,"x"],"b":true,"d":1.5,"i":-7,"n":null,"s":"he\"llo\n"})");
}

TEST(JsonTest, ParseRoundTrip) {
  const char* text =
      R"({"arr":[1,"x",null,true],"bin":{"$bin":"0a0b"},"nested":{"k":2.25},"neg":-12})";
  const Value v = parse_json(text);
  EXPECT_EQ(v.as_object().at("neg").as_int(), -12);
  EXPECT_EQ(v.as_object().at("bin").as_binary(), (Bytes{0x0a, 0x0b}));
  EXPECT_DOUBLE_EQ(v.as_object().at("nested").as_object().at("k").as_double(), 2.25);
  // Round trip through text again.
  EXPECT_EQ(parse_json(to_json(v)), v);
}

TEST(JsonTest, ParseEscapes) {
  const Value v = parse_json(R"("aA\t\\\"")");
  EXPECT_EQ(v.as_string(), "aA\t\\\"");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_THROW(parse_json(""), Error);
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("[1,]"), Error);
  EXPECT_THROW(parse_json("{\"a\" 1}"), Error);
  EXPECT_THROW(parse_json("tru"), Error);
  EXPECT_THROW(parse_json("12 34"), Error);
  EXPECT_THROW(parse_json("\"unterminated"), Error);
}

TEST(JsonTest, DocumentRoundTrip) {
  Document d;
  d.id = "f001";
  d.set("status", Value("final"));
  d.set("value", Value(6.3));
  const Document back = parse_document_json(to_json(d));
  EXPECT_EQ(back, d);
}

TEST(BinaryCodecTest, AllTypesRoundTrip) {
  Object obj;
  obj["null"] = Value(nullptr);
  obj["t"] = Value(true);
  obj["f"] = Value(false);
  obj["i"] = Value(std::int64_t{-1234567890123});
  obj["d"] = Value(3.14159);
  obj["s"] = Value(std::string("hello\0world", 11));  // embedded NUL survives
  obj["bin"] = Value(Bytes{0, 255, 127});
  obj["arr"] = Value(Array{Value(std::int64_t{1}), Value(Array{}), Value(Object{})});
  const Value v(obj);
  EXPECT_EQ(decode_value(encode_value(v)), v);
}

TEST(BinaryCodecTest, DocumentRoundTrip) {
  Document d;
  d.id = "abc";
  d.set("x", Value(std::int64_t{9}));
  EXPECT_EQ(decode_document(encode_document(d)), d);
}

TEST(BinaryCodecTest, MalformedInputRejected) {
  EXPECT_THROW(decode_value(Bytes{}), Error);
  EXPECT_THROW(decode_value(Bytes{99}), Error);          // unknown tag
  EXPECT_THROW(decode_value(Bytes{3, 0, 0}), Error);     // truncated int
  EXPECT_THROW(decode_value(Bytes{5, 0, 0, 0, 10, 'a'}), Error);  // short string
  // Trailing bytes rejected.
  Bytes ok = encode_value(Value(std::int64_t{1}));
  ok.push_back(0);
  EXPECT_THROW(decode_value(ok), Error);
}

TEST(BinaryCodecTest, NumbersPreserveBitPatterns) {
  for (double d : {0.0, -0.0, 1e-300, -1e300, 6.3}) {
    EXPECT_EQ(decode_value(encode_value(Value(d))).as_double(), d);
  }
  for (std::int64_t i : {INT64_MIN, INT64_MAX, std::int64_t{0}}) {
    EXPECT_EQ(decode_value(encode_value(Value(i))).as_int(), i);
  }
}

}  // namespace
}  // namespace datablinder::doc
