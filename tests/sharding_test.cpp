// ShardedCloud integration tests: the fidelity contract (1-shard config is
// byte-identical to the non-sharded stack), result identity between sharded
// and single-node gateways for every tactic family, real data distribution
// across shards, and per-shard failover isolation under chaos.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/sharding.hpp"
#include "core/tactics/builtin.hpp"
#include "core/wire.hpp"
#include "fhir/observation.hpp"
#include "kms/key_manager.hpp"
#include "net/channel.hpp"
#include "net/rpc.hpp"
#include "store/kvstore.hpp"

namespace datablinder {
namespace {

using doc::Document;
using doc::Value;

core::TacticRegistry& registry() {
  static core::TacticRegistry r = [] {
    core::TacticRegistry reg;
    core::register_builtin_tactics(reg);
    return reg;
  }();
  return r;
}

core::GatewayConfig sharded_config(std::size_t shards, std::size_t replicas = 1) {
  core::GatewayConfig cfg;
  cfg.tactic_params = {{"paillier_modulus_bits", "256"}};
  cfg.shards = shards;
  cfg.replicas = replicas;
  return cfg;
}

/// One full client stack (cloud + gateway) at a given shard count, loaded
/// with a deterministic corpus so different shard counts are comparable.
struct Stack {
  explicit Stack(std::size_t shards, std::size_t replicas = 1)
      : cloud(sharded_config(shards, replicas)),
        gateway(cloud.client(), kms, local, registry(),
                sharded_config(shards, replicas)) {
    gateway.register_schema(fhir::observation_schema("observations"));
  }

  void load(std::size_t docs) {
    fhir::ObservationGenerator gen(1234);  // same seed on every stack
    for (std::size_t i = 0; i < docs; ++i) {
      Document d = gen.next();
      d.id = "obs-" + std::to_string(i);
      gateway.insert("observations", d);
    }
  }

  core::ShardedCloud cloud;
  kms::KeyManager kms;
  store::KvStore local;
  core::Gateway gateway;
};

std::vector<std::string> ids_of(const std::vector<Document>& docs) {
  std::vector<std::string> ids;
  ids.reserve(docs.size());
  for (const auto& d : docs) ids.push_back(d.id);
  return ids;
}

TEST(ShardingTest, ResultsIdenticalAcrossShardCounts) {
  // The §5.1 schema exercises every tactic family: BIEX-2Lev boolean,
  // Mitra equality, DET+OPE range, RND, Paillier aggregate. Whatever the
  // shard count, a gateway must return identical results in identical
  // order — sharding is a deployment knob, not a semantics change.
  Stack one(1), four(4), five(5);
  one.load(40);
  four.load(40);
  five.load(40);

  fhir::ObservationGenerator qgen(77);
  for (int q = 0; q < 8; ++q) {
    const Value subject = qgen.random_subject();
    EXPECT_EQ(ids_of(one.gateway.equality_search("observations", "subject", subject)),
              ids_of(four.gateway.equality_search("observations", "subject", subject)));
    EXPECT_EQ(ids_of(one.gateway.equality_search("observations", "subject", subject)),
              ids_of(five.gateway.equality_search("observations", "subject", subject)));

    core::FieldBoolQuery bq;
    bq.dnf.push_back({{"status", qgen.random_status()}, {"code", qgen.random_code()}});
    EXPECT_EQ(ids_of(one.gateway.boolean_search("observations", bq)),
              ids_of(four.gateway.boolean_search("observations", bq)));

    const auto [lo, hi] = qgen.random_effective_range();
    EXPECT_EQ(ids_of(one.gateway.range_search("observations", "effective", lo, hi)),
              ids_of(four.gateway.range_search("observations", "effective", lo, hi)));
  }

  // Point reads round-trip the same payload everywhere.
  for (int i = 0; i < 40; i += 7) {
    const std::string id = "obs-" + std::to_string(i);
    const Document a = one.gateway.read("observations", id);
    const Document b = four.gateway.read("observations", id);
    EXPECT_EQ(a.at("subject").as_string(), b.at("subject").as_string());
    EXPECT_EQ(a.at("value").as_double(), b.at("value").as_double());
  }

  // Paillier partials multiply homomorphically at the router: the global
  // average is exact, not approximate.
  const double avg1 =
      one.gateway.aggregate("observations", "value", schema::Aggregate::kAverage).value;
  const double avg4 =
      four.gateway.aggregate("observations", "value", schema::Aggregate::kAverage).value;
  const double avg5 =
      five.gateway.aggregate("observations", "value", schema::Aggregate::kAverage).value;
  EXPECT_DOUBLE_EQ(avg1, avg4);
  EXPECT_DOUBLE_EQ(avg1, avg5);
}

TEST(ShardingTest, DataActuallySpreadsAcrossShards) {
  Stack four(4);
  four.load(48);
  for (std::size_t s = 0; s < four.cloud.shard_count(); ++s) {
    EXPECT_GT(four.cloud.node(s).storage_bytes(), 0u) << "shard " << s << " empty";
  }
}

TEST(ShardingTest, OneShardConfigByteIdenticalToPlainStack) {
  // Fidelity contract, tier 1: shards = 1 / replicas = 1 / no hedging must
  // not merely behave like the pre-sharding build — it must BE it on the
  // wire, byte for byte and round trip for round trip.
  core::ShardedCloud sharded(sharded_config(1));
  ASSERT_EQ(sharded.router(), nullptr);

  core::CloudNode plain_node;
  net::Channel plain_channel;
  net::RpcClient plain_client(plain_node.rpc(), plain_channel);

  auto drive = [](net::RpcClient& c) {
    for (int i = 0; i < 10; ++i) {
      c.call("doc.put", core::wire::pack({{"col", Value("c")},
                                          {"id", Value("d-" + std::to_string(i))},
                                          {"blob", Value(Bytes(64, 7))}}));
    }
    c.call("doc.get", core::wire::pack({{"col", Value("c")}, {"id", Value("d-3")}}));
    c.call("doc.list", core::wire::pack({{"col", Value("c")}}));
  };
  drive(sharded.client());
  drive(plain_client);

  const auto& s = sharded.channel(0).stats();
  const auto& p = plain_channel.stats();
  EXPECT_EQ(s.bytes_sent.load(), p.bytes_sent.load());
  EXPECT_EQ(s.bytes_received.load(), p.bytes_received.load());
  EXPECT_EQ(s.round_trips.load(), p.round_trips.load());
}

TEST(ShardingTest, ShardPrimaryFailoverDoesNotStallSiblings) {
  // Chaos: 3 shards x 3 replicas; kill shard 0's primary channel
  // mid-workload. Reads and writes owned by shard 0 fail over inside its
  // ReplicaGroup; the other shards never see a failover event.
  core::GatewayConfig cfg = sharded_config(3, 3);
  cfg.retry = net::RetryPolicy::standard();
  cfg.retry.jitter_seed = 42;

  core::ShardedCloud cloud(cfg);
  kms::KeyManager kms;
  store::KvStore local;
  core::Gateway gw(cloud.client(), kms, local, registry(), cfg);
  gw.register_schema(fhir::observation_schema("observations"));

  fhir::ObservationGenerator gen(9);
  for (int i = 0; i < 24; ++i) {
    Document d = gen.next();
    d.id = "c-" + std::to_string(i);
    gw.insert("observations", d);
  }

  cloud.channel(0, 0).close();  // shard 0 loses its primary

  // Every document stays readable and writable, whichever shard owns it.
  fhir::ObservationGenerator gen2(10);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(gw.read("observations", "c-" + std::to_string(i)).id,
              "c-" + std::to_string(i));
  }
  for (int i = 24; i < 36; ++i) {
    Document d = gen2.next();
    d.id = "c-" + std::to_string(i);
    gw.insert("observations", d);
    EXPECT_EQ(gw.read("observations", "c-" + std::to_string(i)).id,
              "c-" + std::to_string(i));
  }

  // The failover happened, and it happened ONLY on shard 0: the instance
  // labels prove the siblings kept serving undisturbed.
  const auto& perf = gw.perf();
  EXPECT_GE(perf.counter("net.replica.failover") +
                perf.counter("net.replica.read_failover"),
            1u);
  EXPECT_GE(perf.counter("net.shard.0.replica.failover") +
                perf.counter("net.shard.0.replica.read_failover"),
            1u);
  for (std::size_t s = 1; s < 3; ++s) {
    const std::string prefix = "net.shard." + std::to_string(s) + ".";
    EXPECT_EQ(perf.counter(prefix + "replica.failover"), 0u);
    EXPECT_EQ(perf.counter(prefix + "replica.read_failover"), 0u);
  }
}

}  // namespace
}  // namespace datablinder
