// Exec-subsystem tests: the planner/executor pipeline, batched candidate
// retrieval (doc.mget), and tactic-parameter parsing.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "core/wire.hpp"
#include "store/docstore.hpp"

namespace datablinder {
namespace {

using core::DocId;
using doc::Document;
using doc::Value;

// --- store-level batched lookup ---------------------------------------------

TEST(MultiGetTest, ReturnsPartialResultsInRequestOrder) {
  store::Collection col("c");
  for (int i = 0; i < 3; ++i) {
    Document d;
    d.id = "id" + std::to_string(i);
    d.set("n", Value(std::int64_t{i}));
    col.put(std::move(d));
  }
  const auto found = col.get_many({"id2", "missing-a", "id0", "missing-b", "id1"});
  ASSERT_EQ(found.size(), 3u);
  EXPECT_EQ(found[0].id, "id2");
  EXPECT_EQ(found[1].id, "id0");
  EXPECT_EQ(found[2].id, "id1");
}

TEST(MultiGetTest, EmptyRequestReturnsEmpty) {
  store::Collection col("c");
  EXPECT_TRUE(col.get_many({}).empty());
}

// --- wire-level doc.mget ------------------------------------------------------

struct Rig {
  Rig() : rpc(cloud.rpc(), channel) {}
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc;
  kms::KeyManager kms;
  store::KvStore local;
};

TEST(MultiGetTest, RpcSkipsVanishedIds) {
  Rig rig;
  for (int i = 0; i < 3; ++i) {
    rig.rpc.call("doc.put",
                 core::wire::pack({{"col", Value("c")},
                                   {"id", Value("d" + std::to_string(i))},
                                   {"blob", Value(Bytes{1, 2, 3})}}));
  }
  doc::Array ids;
  for (const char* id : {"d0", "gone", "d2"}) ids.emplace_back(std::string(id));
  const Bytes reply = rig.rpc.call(
      "doc.mget", core::wire::pack({{"col", Value("c")}, {"ids", Value(ids)}}));
  const doc::Object resp = core::wire::unpack(reply);
  const doc::Array& docs = core::wire::get_arr(resp, "docs");
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(core::wire::get_str(docs[0].as_object(), "id"), "d0");
  EXPECT_EQ(core::wire::get_str(docs[1].as_object(), "id"), "d2");
}

// --- gateway-level round-trip accounting -------------------------------------

schema::Schema det_only_schema(const std::string& name) {
  schema::Schema s(name);
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kString;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass5;
  f.operations = {schema::Operation::kInsert, schema::Operation::kEquality};
  s.field("name", f);
  return s;
}

TEST(BatchedResolutionTest, KCandidateSearchIsOneFetchRoundTrip) {
  Rig rig;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gw(rig.rpc, rig.kms, rig.local, registry, {});
  gw.register_schema(det_only_schema("people"));
  ASSERT_EQ(gw.plan("people").fields.at("name").eq_tactic, "DET");

  constexpr int k = 8;
  for (int i = 0; i < k; ++i) {
    Document d;
    d.set("name", Value("popular"));
    gw.insert("people", d);
  }

  const std::uint64_t before = rig.channel.stats().round_trips.load();
  const auto hits = gw.equality_search("people", "name", Value("popular"));
  const std::uint64_t used = rig.channel.stats().round_trips.load() - before;
  EXPECT_EQ(hits.size(), static_cast<std::size_t>(k));
  // One det.search + ONE doc.mget for all k candidates — not k doc.gets.
  EXPECT_EQ(used, 2u);
}

TEST(BatchedResolutionTest, VanishedCandidatesAreSkippedLikeTheOldLoop) {
  Rig rig;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gw(rig.rpc, rig.kms, rig.local, registry, {});
  gw.register_schema(det_only_schema("people"));

  std::vector<DocId> ids;
  for (int i = 0; i < 4; ++i) {
    Document d;
    d.set("name", Value("v"));
    ids.push_back(gw.insert("people", d));
  }
  // Delete one document behind the index's back: the index still lists it.
  rig.rpc.call("doc.del",
               core::wire::pack({{"col", Value("people")}, {"id", Value(ids[1])}}));

  const auto hits = gw.equality_search("people", "name", Value("v"));
  EXPECT_EQ(hits.size(), 3u);  // partial result, no throw
  for (const auto& d : hits) EXPECT_NE(d.id, ids[1]);
}

TEST(BatchedResolutionTest, PipelineStagesAreTimed) {
  Rig rig;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gw(rig.rpc, rig.kms, rig.local, registry, {});
  gw.register_schema(det_only_schema("people"));

  Document d;
  d.set("name", Value("x"));
  gw.insert("people", d);
  gw.equality_search("people", "name", Value("x"));

  // The Fig. 1 perf reification covers the core pipeline itself.
  using core::TacticOperation;
  EXPECT_EQ(gw.perf().stats("core.store", TacticOperation::kInsert).count, 1u);
  EXPECT_EQ(gw.perf().stats("core.index", TacticOperation::kInsert).count, 1u);
  EXPECT_EQ(gw.perf().stats("core.index", TacticOperation::kEqualitySearch).count, 1u);
  EXPECT_EQ(gw.perf().stats("core.resolve", TacticOperation::kEqualitySearch).count, 1u);
  EXPECT_EQ(gw.perf().stats("core.verify", TacticOperation::kEqualitySearch).count, 1u);
  // Tactic-level series are still recorded.
  EXPECT_EQ(gw.perf().stats("DET", TacticOperation::kInsert).count, 1u);
}

// --- GatewayContext::param_int ------------------------------------------------

TEST(ParamIntTest, ParsesValidAndFallsBack) {
  core::GatewayContext ctx;
  ctx.params["bits"] = "256";
  EXPECT_EQ(ctx.param_int("bits", 7), 256);
  EXPECT_EQ(ctx.param_int("absent", 7), 7);
}

TEST(ParamIntTest, MalformedValuesBecomeTypedErrors) {
  core::GatewayContext ctx;
  ctx.params["bits"] = "not-a-number";
  ctx.params["trail"] = "12abc";
  ctx.params["huge"] = "99999999999999999999";
  ctx.params["empty"] = "";
  for (const char* name : {"bits", "trail", "huge", "empty"}) {
    try {
      ctx.param_int(name, 0);
      FAIL() << "expected kInvalidArgument for param " << name;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
      EXPECT_NE(std::string(e.what()).find(name), std::string::npos)
          << "error must name the parameter";
    }
  }
}

// --- executor error propagation ----------------------------------------------

TEST(ExecutorTest, StepFailureSurfacesOnCallingThread) {
  Rig rig;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gw(rig.rpc, rig.kms, rig.local, registry, {});
  gw.register_schema(det_only_schema("people"));

  // Close the channel: the doc.put step inside the plan must fail and the
  // error must reach the caller as the original typed Error.
  rig.channel.close();
  Document d;
  d.set("name", Value("x"));
  try {
    gw.insert("people", d);
    FAIL() << "expected kUnavailable";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
  }
  rig.channel.reopen();
  EXPECT_NO_THROW(gw.insert("people", d));
}

}  // namespace
}  // namespace datablinder
