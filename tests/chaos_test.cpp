// Deterministic chaos harness for the replicated cloud: scripted FaultPlans
// across independent replica channels, asserting the three group
// invariants under every scenario —
//   1. no acknowledged write is lost while any healthy replica remains,
//   2. no write is applied twice (byte-exact: each replica channel carried
//      exactly the log's wire bytes, and state digests converge),
//   3. reads keep succeeding while any healthy in-sync replica remains.
// Plus the fidelity contract: GatewayConfig{replicas = 1, hedged_reads =
// false} is byte-identical on the wire to a hand-built single-node stack.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/replication.hpp"
#include "core/tactics/builtin.hpp"
#include "core/wire.hpp"
#include "fhir/observation.hpp"
#include "net/replica_group.hpp"

namespace datablinder {
namespace {

using core::ReplicatedCloud;
using doc::Document;
using doc::Value;
using net::ReplicaGroup;

core::TacticRegistry& registry() {
  static core::TacticRegistry r = [] {
    core::TacticRegistry reg;
    core::register_builtin_tactics(reg);
    return reg;
  }();
  return r;
}

core::GatewayConfig replicated_config(std::size_t replicas) {
  core::GatewayConfig cfg;
  cfg.tactic_params = {{"paillier_modulus_bits", "256"}};
  cfg.retry = net::RetryPolicy::standard();
  cfg.retry.jitter_seed = 42;  // deterministic backoff schedule
  cfg.replicas = replicas;
  return cfg;
}

/// Serialized "doc.put" request — the minimal write for group-level tests.
Bytes put_request(const std::string& id, std::uint8_t fill) {
  net::Request r;
  r.method = "doc.put";
  r.payload = core::wire::pack(
      {{"col", Value(std::string("c"))}, {"id", Value(id)}, {"blob", Value(Bytes(64, fill))}});
  return r.serialize();
}

/// Asserts every replica's channel carried exactly the log's wire bytes up
/// to its applied sequence — the structural no-duplicate-application check
/// (a re-shipped entry would inflate bytes_sent past the log total). Call
/// BEFORE issuing reads through the group: read traffic adds bytes.
void expect_byte_exact_replication(ReplicatedCloud& rc) {
  ReplicaGroup* g = rc.group();
  ASSERT_NE(g, nullptr);
  for (std::size_t i = 0; i < g->size(); ++i) {
    EXPECT_EQ(rc.channel(i).stats().bytes_sent.load(),
              g->log_wire_bytes(g->applied_seq(i)))
        << "replica " << i << " carried duplicated or missing write bytes";
  }
}

void expect_digests_converged(ReplicatedCloud& rc) {
  const std::uint64_t d0 = rc.node(0).state_digest();
  for (std::size_t i = 1; i < rc.size(); ++i) {
    EXPECT_EQ(rc.node(i).state_digest(), d0) << "replica " << i << " diverged";
  }
}

// --- group-level scenarios (raw wire traffic, no gateway) --------------------

TEST(ChaosGroup, AckLostWriteIsDedupedOnRetryByteExactly) {
  // The response leg of a write faults AFTER the primary applied it. The
  // ack is lost, but the entry is replicated; re-sending the same bytes
  // (what RpcClient's retry does) must finish the write — ack from the
  // stored response — without a second application anywhere.
  ReplicatedCloud rc(replicated_config(3));
  ReplicaGroup* g = rc.group();
  ASSERT_NE(g, nullptr);
  std::map<std::string, std::uint64_t> counters;
  g->set_metrics_hook(
      [&](const char* series, std::uint64_t v) { counters[series] += v; });

  const Bytes wire = put_request("doc-1", 0xAB);
  net::FaultPlan plan;
  plan.fail_transfers = {2};  // ordinal 1 = request leg, 2 = response leg
  rc.channel(0).arm_fault_plan(plan);

  try {
    g->call("doc.put", wire);
    FAIL() << "expected the lost ack to surface as kUnavailable";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
  }
  EXPECT_EQ(counters["net.replica.ack_lost"], 1u);
  // Applied on the primary and replicated to both backups despite the
  // missing ack; not yet acknowledged.
  EXPECT_EQ(g->log_entries(), 1u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(g->applied_seq(i), 1u);

  // Byte-identical retry: deduped, acknowledged, applied exactly once.
  g->call("doc.put", wire);
  EXPECT_EQ(counters["net.replica.write_dedup"], 1u);
  EXPECT_EQ(g->log_entries(), 1u);
  EXPECT_EQ(g->committed_seq(), 1u);
  expect_digests_converged(rc);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(rc.node(i).rpc().method_count() > 0);
    EXPECT_TRUE(
        rc.node(i).state_digest() == rc.node(0).state_digest());
  }
  // Backup channels carried the wire bytes exactly once each.
  EXPECT_EQ(rc.channel(1).stats().bytes_sent.load(), wire.size());
  EXPECT_EQ(rc.channel(2).stats().bytes_sent.load(), wire.size());
}

TEST(ChaosGroup, FaultingBackupIsDemotedBeforeAckAndRejoinsExactlyOnce) {
  // A backup that faults during shipping is demoted BEFORE the ack, so
  // "acknowledged" never covers a replica that missed the write. After it
  // heals, catch-up replays exactly the missed suffix.
  core::GatewayConfig cfg = replicated_config(3);
  cfg.accrual.suspect_threshold = 1;  // demote on the first miss
  ReplicatedCloud rc(cfg);
  ReplicaGroup* g = rc.group();
  std::map<std::string, std::uint64_t> counters;
  g->set_metrics_hook(
      [&](const char* series, std::uint64_t v) { counters[series] += v; });

  g->call("doc.put", put_request("a", 1));  // all replicas healthy

  rc.channel(2).close();  // partition backup 2
  g->call("doc.put", put_request("b", 2));
  g->call("doc.put", put_request("c", 3));
  EXPECT_EQ(counters["net.replica.demote"], 1u);
  EXPECT_EQ(g->applied_seq(0), 3u);
  EXPECT_EQ(g->applied_seq(1), 3u);
  EXPECT_EQ(g->applied_seq(2), 1u);  // lagging, excluded from the ack set
  EXPECT_EQ(g->committed_seq(), 3u);  // acked without the suspect

  rc.channel(2).reopen();
  EXPECT_EQ(g->catch_up_all(), 3u);
  EXPECT_GE(counters["net.replica.rejoin"], 1u);
  EXPECT_EQ(g->applied_seq(2), 3u);
  expect_byte_exact_replication(rc);
  expect_digests_converged(rc);
}

TEST(ChaosGroup, NonWhitelistedReadIsNeverResentAfterSend) {
  // Satellite 2: a method outside the retry whitelist must not be hedged
  // and must not fail over to another replica once its request leg has
  // shipped — even when the response leg faults.
  ReplicatedCloud rc(replicated_config(2));
  ReplicaGroup* g = rc.group();
  // Whitelist WITHOUT doc.get: the group must treat it as un-resendable.
  g->set_hedgeable([](const std::string&) { return false; });

  g->call("doc.put", put_request("x", 9));
  const Bytes read = [] {
    net::Request r;
    r.method = "doc.get";
    r.payload = core::wire::pack(
        {{"col", Value(std::string("c"))}, {"id", Value(std::string("x"))}});
    return r.serialize();
  }();

  // Reads route by health score. The primary carries the write's latency
  // EWMA while the backup has no history (score 0), so the first read
  // deterministically goes to replica 1. Fault its RESPONSE leg: the
  // request shipped, so no second replica may see the method.
  net::FaultPlan plan;
  plan.fail_transfers = {2};  // ordinal 1 = request leg, 2 = response leg
  rc.channel(1).arm_fault_plan(plan);
  const std::uint64_t primary_sent = rc.channel(0).stats().bytes_sent.load();
  const std::uint64_t backup_sent = rc.channel(1).stats().bytes_sent.load();

  EXPECT_THROW(g->call("doc.get", read), Error);
  // The read shipped to the backup and died on the response leg; the
  // primary saw NO traffic for this call: no hedge, no failover after send.
  EXPECT_EQ(rc.channel(1).stats().bytes_sent.load(), backup_sent + read.size());
  EXPECT_EQ(rc.channel(0).stats().bytes_sent.load(), primary_sent);
}

TEST(ChaosGroup, RequestLegFailureFailsOverEvenForNonWhitelistedReads) {
  // Contrast case: a fault BEFORE the request ships is always safe to
  // re-route — the method never reached any replica.
  ReplicatedCloud rc(replicated_config(2));
  ReplicaGroup* g = rc.group();
  g->set_hedgeable([](const std::string&) { return false; });
  g->call("doc.put", put_request("x", 9));

  const Bytes read = [] {
    net::Request r;
    r.method = "doc.get";
    r.payload = core::wire::pack(
        {{"col", Value(std::string("c"))}, {"id", Value(std::string("x"))}});
    return r.serialize();
  }();

  // Fail the request leg on the first-choice reader (the history-less
  // backup, replica 1): nothing shipped, so even a non-whitelisted method
  // re-routes and the primary serves the call.
  net::FaultPlan plan;
  plan.method_faults = {{"doc.get", /*skip=*/0, /*count=*/1}};
  rc.channel(1).arm_fault_plan(plan);
  const std::uint64_t primary_trips = rc.channel(0).stats().round_trips.load();
  const Bytes payload = g->call("doc.get", read);  // succeeds via failover
  EXPECT_FALSE(payload.empty());
  EXPECT_EQ(rc.channel(0).stats().round_trips.load(), primary_trips + 1);
}

// --- gateway-level scenarios -------------------------------------------------

TEST(ChaosGateway, KillPrimaryMidInsertLosesNoAcknowledgedWrite) {
  ReplicatedCloud rc(replicated_config(3));
  kms::KeyManager kms(Bytes(32, 11));
  store::KvStore local;
  core::Gateway gw(rc.client(), kms, local, registry(), replicated_config(3));
  gw.register_schema(fhir::benchmark_schema("obs"));

  fhir::ObservationGenerator gen(21);
  std::vector<std::string> acked;
  for (int i = 0; i < 5; ++i) {
    Document d = gen.next();
    d.id = "pre-" + std::to_string(i);
    d.set("subject", Value("patient-c"));
    acked.push_back(gw.insert("obs", d));
  }

  // Kill the primary completely, mid-workload. The failure-accrual
  // detector demotes it after `suspect_threshold` consecutive transport
  // failures; the write fails over and the insert stream continues.
  ASSERT_NE(rc.group(), nullptr);
  ASSERT_EQ(rc.group()->primary(), 0u);
  rc.channel(0).close();
  for (int i = 5; i < 10; ++i) {
    Document d = gen.next();
    d.id = "post-" + std::to_string(i);
    d.set("subject", Value("patient-c"));
    acked.push_back(gw.insert("obs", d));
  }
  EXPECT_NE(rc.group()->primary(), 0u);
  EXPECT_GE(gw.perf().counter("net.replica.demote"), 1u);
  EXPECT_GE(gw.perf().counter("net.replica.failover"), 1u);

  // Invariant 1+3: every acknowledged write is readable with the old
  // primary still dead.
  for (const auto& id : acked) EXPECT_EQ(gw.read("obs", id).id, id);
  EXPECT_EQ(gw.equality_search("obs", "subject", Value("patient-c")).size(), 10u);

  // Heal: the old primary catches up on exactly the missed suffix and the
  // replica set reconverges byte-for-byte.
  rc.channel(0).reopen();
  EXPECT_EQ(rc.catch_up(), 3u);
  EXPECT_EQ(rc.node(0).state_digest(), rc.node(1).state_digest());
  EXPECT_EQ(rc.node(1).state_digest(), rc.node(2).state_digest());
}

TEST(ChaosGateway, PartitionThenHealConvergesByteExactly) {
  ReplicatedCloud rc(replicated_config(3));
  kms::KeyManager kms(Bytes(32, 12));
  store::KvStore local;
  core::Gateway gw(rc.client(), kms, local, registry(), replicated_config(3));
  gw.register_schema(fhir::benchmark_schema("obs"));

  fhir::ObservationGenerator gen(22);
  for (int i = 0; i < 3; ++i) {
    Document d = gen.next();
    d.id = "before-" + std::to_string(i);
    gw.insert("obs", d);
  }

  // Partition backup 1 for a stretch of writes; it is demoted and the
  // writes are acknowledged by the surviving in-sync set.
  rc.channel(1).close();
  for (int i = 0; i < 4; ++i) {
    Document d = gen.next();
    d.id = "during-" + std::to_string(i);
    gw.insert("obs", d);
  }
  ASSERT_NE(rc.group(), nullptr);
  EXPECT_LT(rc.group()->applied_seq(1), rc.group()->applied_seq(0));

  // Heal. The next write's replication pass doubles as the probe: the
  // healed backup is caught up with exactly the missed log suffix.
  rc.channel(1).reopen();
  Document d = gen.next();
  d.id = "after-heal";
  gw.insert("obs", d);
  EXPECT_EQ(rc.group()->applied_seq(1), rc.group()->applied_seq(0));
  EXPECT_GE(gw.perf().counter("net.replica.rejoin"), 1u);

  // Invariant 2, byte-exactly: every replica channel carried the log's
  // wire bytes exactly once (checked before any reads are issued).
  expect_byte_exact_replication(rc);
  expect_digests_converged(rc);
  EXPECT_EQ(gw.read("obs", "after-heal").id, "after-heal");
}

TEST(ChaosGateway, BackupLagThenPromoteServesEveryAcknowledgedWrite) {
  // The lagging backup heals, catches up, and is then promoted when the
  // primary dies — catch-up replay BEFORE promotion means no acknowledged
  // write is missing from the new primary.
  core::GatewayConfig cfg = replicated_config(3);
  // Demote on the first miss so a double failure (primary + one backup dead
  // at once) re-elects within a single retry budget.
  cfg.accrual.suspect_threshold = 1;
  ReplicatedCloud rc(cfg);
  kms::KeyManager kms(Bytes(32, 13));
  store::KvStore local;
  core::Gateway gw(rc.client(), kms, local, registry(), cfg);
  gw.register_schema(fhir::benchmark_schema("obs"));

  fhir::ObservationGenerator gen(23);
  std::vector<std::string> acked;

  rc.channel(2).close();  // replica 2 lags from the start of the workload
  for (int i = 0; i < 6; ++i) {
    Document d = gen.next();
    d.id = "w-" + std::to_string(i);
    d.set("subject", Value("patient-l"));
    acked.push_back(gw.insert("obs", d));
  }
  rc.channel(2).reopen();
  EXPECT_EQ(rc.catch_up(), 3u);  // heals + fully catches up the laggard

  // Primary and replica 1 both die: only the once-lagging replica 2
  // remains. Failover must still produce a primary that holds every
  // acknowledged write.
  rc.channel(0).close();
  rc.channel(1).close();
  Document d = gen.next();
  d.id = "only-replica-2";
  d.set("subject", Value("patient-l"));
  acked.push_back(gw.insert("obs", d));
  EXPECT_EQ(rc.group()->primary(), 2u);

  for (const auto& id : acked) EXPECT_EQ(gw.read("obs", id).id, id);
  EXPECT_EQ(gw.equality_search("obs", "subject", Value("patient-l")).size(),
            acked.size());
}

TEST(ChaosGateway, ReadsSucceedWhileAnyHealthyReplicaRemains) {
  ReplicatedCloud rc(replicated_config(3));
  kms::KeyManager kms(Bytes(32, 14));
  store::KvStore local;
  core::Gateway gw(rc.client(), kms, local, registry(), replicated_config(3));
  gw.register_schema(fhir::benchmark_schema("obs"));

  fhir::ObservationGenerator gen(24);
  Document d = gen.next();
  d.id = "survivor";
  gw.insert("obs", d);

  rc.channel(0).close();
  EXPECT_EQ(gw.read("obs", "survivor").id, "survivor");  // 2 replicas left
  rc.channel(1).close();
  EXPECT_EQ(gw.read("obs", "survivor").id, "survivor");  // 1 replica left
  rc.channel(2).close();
  EXPECT_THROW(gw.read("obs", "survivor"), Error);  // none left
  rc.channel(1).reopen();
  EXPECT_EQ(gw.read("obs", "survivor").id, "survivor");  // healed
}

TEST(ChaosGateway, SlowReplicaHedgedReadStaysFastAndWins) {
  core::GatewayConfig cfg = replicated_config(3);
  cfg.hedged_reads = true;
  cfg.hedge.min_delay_us = 300;
  cfg.hedge.max_delay_us = 2000;
  ReplicatedCloud rc(cfg);
  kms::KeyManager kms(Bytes(32, 15));
  store::KvStore local;
  core::Gateway gw(rc.client(), kms, local, registry(), cfg);
  gw.register_schema(fhir::benchmark_schema("obs"));

  fhir::ObservationGenerator gen(25);
  Document d = gen.next();
  d.id = "hedged";
  gw.insert("obs", d);

  // Reads route by score; with no read history the backups tie at zero and
  // the lowest index wins. Make THAT replica slow (40 ms per round trip,
  // injected after the writes so replication stays fast): the hedge fires
  // after the p95-derived delay and the fast replica answers first.
  ASSERT_NE(rc.group(), nullptr);
  const std::size_t slow = rc.group()->primary() == 1 ? 2 : 1;
  net::ChannelConfig slow_cfg;
  slow_cfg.one_way_latency_us = 20000;
  rc.channel(slow).set_config(slow_cfg);

  EXPECT_EQ(gw.read("obs", "hedged").id, "hedged");
  EXPECT_GE(gw.perf().counter("net.hedge.fired"), 1u);
  EXPECT_GE(gw.perf().counter("net.hedge.won"), 1u);
}

TEST(ChaosGateway, SingleReplicaConfigIsByteIdenticalToLegacyStack) {
  // Fidelity: replicas = 1 + hedged_reads = false must build no routing
  // layer at all and drive the exact single-node client. Two checks:
  //  (a) a deterministic raw workload (no encryption randomness) produces
  //      byte-identical wire traffic on both stacks;
  //  (b) a full gateway workload produces the same round-trip count (byte
  //      totals can differ across runs only by fresh nonces/blinding, which
  //      never change the number or shape of the trips).
  core::CloudNode legacy_node;
  net::Channel legacy_channel;
  net::RpcClient legacy_rpc(legacy_node.rpc(), legacy_channel);

  core::GatewayConfig single;
  single.replicas = 1;
  single.hedged_reads = false;
  ReplicatedCloud rc(single);
  EXPECT_EQ(rc.group(), nullptr);  // no routing layer at all

  auto raw = [](net::RpcClient& rpc) {
    for (int i = 0; i < 4; ++i) {
      net::Request r;
      r.method = "doc.put";
      r.payload = core::wire::pack({{"col", Value(std::string("c"))},
                                    {"id", Value("raw-" + std::to_string(i))},
                                    {"blob", Value(Bytes(48, 0x5A))}});
      (void)rpc.call(r.method, r.payload);
    }
    net::Request r;
    r.method = "doc.get";
    r.payload = core::wire::pack(
        {{"col", Value(std::string("c"))}, {"id", Value(std::string("raw-2"))}});
    (void)rpc.call(r.method, r.payload);
  };
  raw(legacy_rpc);
  raw(rc.client());
  EXPECT_EQ(rc.channel(0).stats().bytes_sent.load(),
            legacy_channel.stats().bytes_sent.load());
  EXPECT_EQ(rc.channel(0).stats().bytes_received.load(),
            legacy_channel.stats().bytes_received.load());
  EXPECT_EQ(rc.channel(0).stats().round_trips.load(),
            legacy_channel.stats().round_trips.load());
  EXPECT_EQ(rc.node(0).state_digest(), legacy_node.state_digest());

  auto run = [](net::RpcClient& rpc) {
    kms::KeyManager kms(Bytes(32, 16));
    store::KvStore local;
    core::GatewayConfig cfg;
    cfg.tactic_params = {{"paillier_modulus_bits", "256"}};
    core::Gateway gw(rpc, kms, local, registry(), cfg);
    gw.register_schema(fhir::benchmark_schema("obs"));
    fhir::ObservationGenerator gen(26);
    for (int i = 0; i < 5; ++i) {
      Document d = gen.next();
      d.id = "doc-" + std::to_string(i);
      d.set("subject", Value("patient-b"));
      gw.insert("obs", d);
    }
    (void)gw.equality_search("obs", "subject", Value("patient-b"));
    (void)gw.read("obs", "doc-3");
    (void)gw.aggregate("obs", "value", schema::Aggregate::kAverage);
  };
  const std::uint64_t legacy_raw_trips = legacy_channel.stats().round_trips.load();
  const std::uint64_t rc_raw_trips = rc.channel(0).stats().round_trips.load();
  run(legacy_rpc);
  run(rc.client());
  EXPECT_EQ(rc.channel(0).stats().round_trips.load() - rc_raw_trips,
            legacy_channel.stats().round_trips.load() - legacy_raw_trips);
}

}  // namespace
}  // namespace datablinder
