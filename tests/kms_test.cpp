// Key management tests: derivation stability, scoping, rotation.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "kms/key_manager.hpp"

namespace datablinder::kms {
namespace {

TEST(KeyManagerTest, DerivationIsStable) {
  KeyManager km(Bytes(32, 1));
  EXPECT_EQ(km.derive("det/obs/status"), km.derive("det/obs/status"));
  EXPECT_EQ(km.derive("a", 16).size(), 16u);
  EXPECT_EQ(km.derive("a", 64).size(), 64u);
}

TEST(KeyManagerTest, ScopesAreIndependent) {
  KeyManager km(Bytes(32, 1));
  EXPECT_NE(km.derive("det/obs/status"), km.derive("det/obs/code"));
  EXPECT_NE(km.derive("det/obs/status"), km.derive("mitra/obs/status"));
}

TEST(KeyManagerTest, SameMasterSameKeys) {
  KeyManager a(Bytes(32, 7)), b(Bytes(32, 7));
  EXPECT_EQ(a.derive("x"), b.derive("x"));
  KeyManager c(Bytes(32, 8));
  EXPECT_NE(a.derive("x"), c.derive("x"));
}

TEST(KeyManagerTest, RandomMastersDiffer) {
  KeyManager a, b;
  EXPECT_NE(a.derive("x"), b.derive("x"));
}

TEST(KeyManagerTest, RotationChangesKeys) {
  KeyManager km(Bytes(32, 2));
  const Bytes before = km.derive("scope");
  EXPECT_EQ(km.epoch("scope"), 0u);
  EXPECT_EQ(km.rotate("scope"), 1u);
  const Bytes after = km.derive("scope");
  EXPECT_NE(before, after);
  EXPECT_EQ(km.epoch("scope"), 1u);
  // Other scopes unaffected.
  const Bytes other = km.derive("other");
  km.rotate("scope");
  EXPECT_EQ(km.derive("other"), other);
}

TEST(KeyManagerTest, RejectsWeakMaster) {
  EXPECT_THROW(KeyManager(Bytes(8, 1)), Error);
}

TEST(KeyManagerTest, ScopeCount) {
  KeyManager km(Bytes(32, 3));
  km.derive("a");
  km.derive("b");
  km.derive("a");
  EXPECT_EQ(km.scope_count(), 2u);
}

}  // namespace
}  // namespace datablinder::kms
