// Key management tests: derivation stability, scoping, rotation.
//
// derive() returns SecretBytes, which deliberately has no operator==;
// every key comparison here goes through the constant-time ct_equal.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "kms/key_manager.hpp"

namespace datablinder::kms {
namespace {

TEST(KeyManagerTest, DerivationIsStable) {
  KeyManager km(Bytes(32, 1));
  EXPECT_TRUE(ct_equal(km.derive("det/obs/status"), km.derive("det/obs/status")));
  EXPECT_EQ(km.derive("a", 16).size(), 16u);
  EXPECT_EQ(km.derive("a", 64).size(), 64u);
}

TEST(KeyManagerTest, ScopesAreIndependent) {
  KeyManager km(Bytes(32, 1));
  EXPECT_FALSE(ct_equal(km.derive("det/obs/status"), km.derive("det/obs/code")));
  EXPECT_FALSE(ct_equal(km.derive("det/obs/status"), km.derive("mitra/obs/status")));
}

TEST(KeyManagerTest, SameMasterSameKeys) {
  KeyManager a(Bytes(32, 7)), b(Bytes(32, 7));
  EXPECT_TRUE(ct_equal(a.derive("x"), b.derive("x")));
  KeyManager c(Bytes(32, 8));
  EXPECT_FALSE(ct_equal(a.derive("x"), c.derive("x")));
}

TEST(KeyManagerTest, RandomMastersDiffer) {
  KeyManager a, b;
  EXPECT_FALSE(ct_equal(a.derive("x"), b.derive("x")));
}

TEST(KeyManagerTest, SecretMasterConstructor) {
  KeyManager a(SecretBytes::from_view(Bytes(32, 7)));
  KeyManager b(Bytes(32, 7));
  EXPECT_TRUE(ct_equal(a.derive("x"), b.derive("x")));
}

TEST(KeyManagerTest, RotationChangesKeys) {
  KeyManager km(Bytes(32, 2));
  const SecretBytes before = km.derive("scope");
  EXPECT_EQ(km.epoch("scope"), 0u);
  EXPECT_EQ(km.rotate("scope"), 1u);
  const SecretBytes after = km.derive("scope");
  EXPECT_FALSE(ct_equal(before, after));
  EXPECT_EQ(km.epoch("scope"), 1u);
  // Other scopes unaffected.
  const SecretBytes other = km.derive("other");
  km.rotate("scope");
  EXPECT_TRUE(ct_equal(km.derive("other"), other));
}

TEST(KeyManagerTest, RejectsWeakMaster) {
  EXPECT_THROW(KeyManager(Bytes(8, 1)), Error);
}

TEST(KeyManagerTest, ScopeCount) {
  KeyManager km(Bytes(32, 3));
  km.derive("a");
  km.derive("b");
  km.derive("a");
  EXPECT_EQ(km.scope_count(), 2u);
}

}  // namespace
}  // namespace datablinder::kms
