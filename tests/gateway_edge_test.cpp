// Gateway edge cases: partial documents, multiple collections on one
// gateway, empty-corpus queries, id reuse, and cross-collection isolation.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "fhir/observation.hpp"

namespace datablinder::core {
namespace {

using doc::Document;
using doc::Value;

struct Rig {
  Rig()
      : rpc(cloud.rpc(), channel),
        gateway(rpc, kms, local, registry(),
                GatewayConfig{{{"paillier_modulus_bits", "256"}}}) {}

  static TacticRegistry& registry() {
    static TacticRegistry r = [] {
      TacticRegistry reg;
      register_builtin_tactics(reg);
      return reg;
    }();
    return r;
  }

  CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc;
  kms::KeyManager kms;
  store::KvStore local;
  Gateway gateway;
};

schema::Schema optional_fields_schema() {
  schema::Schema s("opt");
  schema::FieldAnnotation name;  // not required
  name.type = schema::FieldType::kString;
  name.sensitive = true;
  name.protection = schema::ProtectionClass::kClass4;
  name.operations = {schema::Operation::kInsert, schema::Operation::kEquality};
  s.field("name", name);
  schema::FieldAnnotation score;
  score.type = schema::FieldType::kDouble;
  score.sensitive = true;
  score.protection = schema::ProtectionClass::kClass1;
  score.operations = {schema::Operation::kInsert};
  score.aggregates = {schema::Aggregate::kAverage, schema::Aggregate::kCount};
  s.field("score", score);
  return s;
}

TEST(GatewayEdgeTest, DocumentsMayOmitOptionalSensitiveFields) {
  Rig rig;
  rig.gateway.register_schema(optional_fields_schema());

  Document with_both;
  with_both.set("name", Value("x"));
  with_both.set("score", Value(10.0));
  rig.gateway.insert("opt", with_both);

  Document name_only;
  name_only.set("name", Value("x"));
  rig.gateway.insert("opt", name_only);

  Document empty;  // no fields at all: valid (nothing required)
  const DocId id = rig.gateway.insert("opt", empty);
  EXPECT_TRUE(rig.gateway.read("opt", id).fields.empty());

  // Searches see exactly the documents carrying the field.
  EXPECT_EQ(rig.gateway.equality_search("opt", "name", Value("x")).size(), 2u);
  // Aggregates count only documents with the aggregated field.
  const auto avg = rig.gateway.aggregate("opt", "score", schema::Aggregate::kAverage);
  EXPECT_EQ(avg.count, 1u);
  EXPECT_NEAR(avg.value, 10.0, 0.01);
}

TEST(GatewayEdgeTest, QueriesOnEmptyCollection) {
  Rig rig;
  rig.gateway.register_schema(fhir::observation_schema("obs"));
  EXPECT_TRUE(rig.gateway.equality_search("obs", "subject", Value("nobody")).empty());
  EXPECT_TRUE(rig.gateway
                  .range_search("obs", "effective", Value(std::int64_t{0}),
                                Value(std::int64_t{100}))
                  .empty());
  FieldBoolQuery q;
  q.dnf.push_back({{"status", Value("final")}});
  EXPECT_TRUE(rig.gateway.boolean_search("obs", q).empty());
  const auto avg = rig.gateway.aggregate("obs", "value", schema::Aggregate::kAverage);
  EXPECT_EQ(avg.count, 0u);
  EXPECT_EQ(avg.value, 0.0);
}

TEST(GatewayEdgeTest, MultipleCollectionsAreIsolated) {
  Rig rig;
  rig.gateway.register_schema(optional_fields_schema());
  rig.gateway.register_schema(fhir::observation_schema("obs"));

  Document d;
  d.set("name", Value("shared-value"));
  rig.gateway.insert("opt", d);

  fhir::ObservationGenerator gen(1);
  Document obs = gen.next();
  obs.set("subject", Value("shared-value"));
  rig.gateway.insert("obs", obs);

  // Each collection sees only its own documents, even for equal values.
  EXPECT_EQ(rig.gateway.equality_search("opt", "name", Value("shared-value")).size(), 1u);
  EXPECT_EQ(rig.gateway.equality_search("obs", "subject", Value("shared-value")).size(),
            1u);
  // And keys are scoped per collection: same value, different ciphertexts
  // (verified indirectly: deleting one leaves the other searchable).
  const auto hits = rig.gateway.equality_search("opt", "name", Value("shared-value"));
  rig.gateway.remove("opt", hits[0].id);
  EXPECT_TRUE(rig.gateway.equality_search("opt", "name", Value("shared-value")).empty());
  EXPECT_EQ(rig.gateway.equality_search("obs", "subject", Value("shared-value")).size(),
            1u);
}

TEST(GatewayEdgeTest, CallerProvidedIdsRoundTripAndCollide) {
  Rig rig;
  rig.gateway.register_schema(optional_fields_schema());
  Document d;
  d.id = "custom-id-1";
  d.set("name", Value("a"));
  EXPECT_EQ(rig.gateway.insert("opt", d), "custom-id-1");

  // Re-inserting the same id replaces the blob (document-store put
  // semantics) — but the index now holds both entries until the old one
  // is removed; update() is the supported path.
  Document replacement;
  replacement.id = "custom-id-1";
  replacement.set("name", Value("b"));
  rig.gateway.update("opt", replacement);
  EXPECT_EQ(rig.gateway.read("opt", "custom-id-1").at("name").as_string(), "b");
  EXPECT_TRUE(rig.gateway.equality_search("opt", "name", Value("a")).empty());
  EXPECT_EQ(rig.gateway.equality_search("opt", "name", Value("b")).size(), 1u);
}

TEST(GatewayEdgeTest, RemoveIsIdempotentPerIndexState) {
  Rig rig;
  rig.gateway.register_schema(optional_fields_schema());
  Document d;
  d.set("name", Value("v"));
  const DocId id = rig.gateway.insert("opt", d);
  rig.gateway.remove("opt", id);
  // Second removal: the document is gone — typed not_found.
  try {
    rig.gateway.remove("opt", id);
    FAIL() << "expected not_found";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
}

TEST(GatewayEdgeTest, LargeValuesSurviveTheFullPath) {
  Rig rig;
  rig.gateway.register_schema(optional_fields_schema());
  const std::string big(64 * 1024, 'x');  // 64 KiB field value
  Document d;
  d.set("name", Value(big));
  const DocId id = rig.gateway.insert("opt", d);
  EXPECT_EQ(rig.gateway.read("opt", id).at("name").as_string(), big);
  EXPECT_EQ(rig.gateway.equality_search("opt", "name", Value(big)).size(), 1u);
}

}  // namespace
}  // namespace datablinder::core
