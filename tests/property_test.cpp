// Property-based tests: randomized workloads where the encrypted system's
// answers are checked against a plaintext reference model, across tactic
// configurations (parameterized gtest sweeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/biexzmf_tactic.hpp"
#include "core/tactics/builtin.hpp"
#include "core/tactics/ore_tactic.hpp"
#include "fhir/observation.hpp"

namespace datablinder::core {
namespace {

using doc::Document;
using doc::Value;

TacticRegistry& registry() {
  static TacticRegistry r = [] {
    TacticRegistry reg;
    register_builtin_tactics(reg);
    return reg;
  }();
  return r;
}

/// A gateway world plus a plaintext mirror of everything inserted.
struct World {
  World()
      : rpc(cloud.rpc(), channel),
        gateway(rpc, kms, local, registry(),
                GatewayConfig{{{"paillier_modulus_bits", "256"}}}) {
    gateway.register_schema(fhir::observation_schema("obs"));
  }

  DocId insert(Document d) {
    const DocId id = gateway.insert("obs", d);
    d.id = id;
    mirror[id] = std::move(d);
    return id;
  }

  void remove(const DocId& id) {
    gateway.remove("obs", id);
    mirror.erase(id);
  }

  std::set<DocId> reference_eq(const std::string& field, const Value& v) const {
    std::set<DocId> out;
    for (const auto& [id, d] : mirror) {
      if (d.has(field) && d.at(field) == v) out.insert(id);
    }
    return out;
  }

  std::set<DocId> reference_range(const std::string& field, std::int64_t lo,
                                  std::int64_t hi) const {
    std::set<DocId> out;
    for (const auto& [id, d] : mirror) {
      if (!d.has(field)) continue;
      const std::int64_t v = d.at(field).as_int();
      if (v >= lo && v <= hi) out.insert(id);
    }
    return out;
  }

  static std::set<DocId> ids_of(const std::vector<Document>& docs) {
    std::set<DocId> out;
    for (const auto& d : docs) out.insert(d.id);
    return out;
  }

  CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc;
  kms::KeyManager kms;
  store::KvStore local;
  Gateway gateway;
  std::map<DocId, Document> mirror;
};

class RandomWorkloadSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWorkloadSweep, EncryptedAnswersMatchPlaintextReference) {
  World w;
  fhir::ObservationGenerator gen(GetParam());
  DetRng rng(GetParam() * 101 + 3);
  std::vector<DocId> live;

  for (int step = 0; step < 120; ++step) {
    const double roll = rng.real();
    if (roll < 0.5 || live.empty()) {
      live.push_back(w.insert(gen.next()));
    } else if (roll < 0.6) {
      const std::size_t pick = rng.uniform(live.size());
      w.remove(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (roll < 0.75) {
      const Value v = gen.random_subject();
      EXPECT_EQ(World::ids_of(w.gateway.equality_search("obs", "subject", v)),
                w.reference_eq("subject", v));
    } else if (roll < 0.9) {
      const auto [lo, hi] = gen.random_effective_range();
      EXPECT_EQ(World::ids_of(w.gateway.range_search("obs", "effective", lo, hi)),
                w.reference_range("effective", lo.as_int(), hi.as_int()));
    } else {
      const Value v = gen.random_status();
      EXPECT_EQ(World::ids_of(w.gateway.equality_search("obs", "status", v)),
                w.reference_eq("status", v));
    }
  }

  // Final full cross-check of every query surface.
  for (const char* subject : {"John Doe", "Alice Martin", "Mia Dupont"}) {
    EXPECT_EQ(World::ids_of(w.gateway.equality_search("obs", "subject", Value(subject))),
              w.reference_eq("subject", Value(subject)));
  }
  double ref_sum = 0;
  for (const auto& [id, d] : w.mirror) ref_sum += d.at("value").as_double();
  const auto avg = w.gateway.aggregate("obs", "value", schema::Aggregate::kAverage);
  ASSERT_EQ(avg.count, w.mirror.size());
  if (!w.mirror.empty()) {
    EXPECT_NEAR(avg.value, ref_sum / static_cast<double>(w.mirror.size()), 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadSweep,
                         ::testing::Values(11, 22, 33, 44));

class BooleanDnfSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BooleanDnfSweep, RandomDnfQueriesMatchReference) {
  World w;
  fhir::ObservationGenerator gen(GetParam() + 500);
  for (int i = 0; i < 50; ++i) w.insert(gen.next());

  DetRng rng(GetParam() * 7 + 1);
  fhir::ObservationGenerator qgen(GetParam() + 900);
  for (int trial = 0; trial < 15; ++trial) {
    FieldBoolQuery q;
    const std::size_t disjuncts = 1 + rng.uniform(2);
    for (std::size_t di = 0; di < disjuncts; ++di) {
      std::vector<FieldTerm> conj;
      conj.push_back({"status", qgen.random_status()});
      if (rng.real() < 0.7) conj.push_back({"code", qgen.random_code()});
      if (rng.real() < 0.3) conj.push_back({"effective", Value(std::int64_t{1})});
      q.dnf.push_back(std::move(conj));
    }

    std::set<DocId> expected;
    for (const auto& [id, d] : w.mirror) {
      for (const auto& conj : q.dnf) {
        const bool all = std::all_of(conj.begin(), conj.end(), [&](const FieldTerm& t) {
          return d.has(t.field) && d.at(t.field) == t.value;
        });
        if (all) {
          expected.insert(id);
          break;
        }
      }
    }
    EXPECT_EQ(World::ids_of(w.gateway.boolean_search("obs", q)), expected)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BooleanDnfSweep, ::testing::Values(1, 2, 3));

// ZMF false positives never survive the gateway's exact re-verification.
TEST(ZmfEndToEnd, ApproximateCandidatesAreReverified) {
  CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;

  // A registry where ZMF outranks 2Lev, with deliberately tiny filters to
  // force false positives.
  TacticRegistry reg;
  register_det_tactic(reg);
  register_rnd_tactic(reg);
  register_mitra_tactic(reg);
  register_biex2lev_tactic(reg);
  {
    TacticDescriptor d = BiexZmfTactic::static_descriptor();
    d.preference = 100;
    reg.register_boolean_tactic(std::move(d), [](const GatewayContext& ctx) {
      return std::make_unique<BiexZmfTactic>(ctx);
    });
  }
  register_ope_tactic(reg);
  register_ore_tactic(reg);
  register_paillier_tactic(reg);

  Gateway gateway(rpc, kms, local, reg,
                  GatewayConfig{{{"paillier_modulus_bits", "256"},
                                 {"zmf_filter_bits", "16"},   // high FP rate
                                 {"zmf_num_hashes", "2"}}});
  gateway.register_schema(fhir::observation_schema("obs"));
  ASSERT_EQ(gateway.plan("obs").boolean_tactic, "BIEX-ZMF");

  fhir::ObservationGenerator gen(321);
  std::map<DocId, Document> mirror;
  for (int i = 0; i < 60; ++i) {
    Document d = gen.next();
    const DocId id = gateway.insert("obs", d);
    d.id = id;
    mirror[id] = std::move(d);
  }

  fhir::ObservationGenerator qgen(654);
  for (int trial = 0; trial < 10; ++trial) {
    FieldBoolQuery q;
    q.dnf.push_back({{"status", qgen.random_status()}, {"code", qgen.random_code()}});
    std::set<DocId> expected;
    for (const auto& [id, d] : mirror) {
      if (d.at("status") == q.dnf[0][0].value && d.at("code") == q.dnf[0][1].value) {
        expected.insert(id);
      }
    }
    std::set<DocId> actual;
    for (const auto& d : gateway.boolean_search("obs", q)) actual.insert(d.id);
    EXPECT_EQ(actual, expected) << "trial " << trial;  // exact despite tiny filters
  }
}

// OPE/ORE range tactics agree with each other on random numeric data.
TEST(RangeTacticAgreement, OpeAndOreReturnIdenticalRanges) {
  CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;

  // Registry with ORE promoted over OPE.
  TacticRegistry ore_first;
  register_det_tactic(ore_first);
  register_rnd_tactic(ore_first);
  register_mitra_tactic(ore_first);
  register_biex2lev_tactic(ore_first);
  register_biexzmf_tactic(ore_first);
  register_ope_tactic(ore_first);
  {
    TacticDescriptor d = OreTactic::static_descriptor();
    d.preference = 100;
    ore_first.register_field_tactic(std::move(d), [](const GatewayContext& ctx) {
      return std::make_unique<OreTactic>(ctx);
    });
  }
  register_paillier_tactic(ore_first);

  auto make_schema = [](const std::string& name) {
    schema::Schema s(name);
    schema::FieldAnnotation f;
    f.type = schema::FieldType::kInt;
    f.sensitive = true;
    f.protection = schema::ProtectionClass::kClass5;
    f.operations = {schema::Operation::kInsert, schema::Operation::kRange};
    s.field("ts", f);
    return s;
  };

  Gateway ope_gw(rpc, kms, local, registry(), {});
  ope_gw.register_schema(make_schema("ope_col"));
  ASSERT_EQ(ope_gw.plan("ope_col").fields.at("ts").range_tactic, "OPE");

  Gateway ore_gw(rpc, kms, local, ore_first, {});
  ore_gw.register_schema(make_schema("ore_col"));
  ASSERT_EQ(ore_gw.plan("ore_col").fields.at("ts").range_tactic, "ORE");

  DetRng rng(55);
  for (int i = 0; i < 40; ++i) {
    const std::int64_t ts = rng.range(-1000, 1000);
    Document d1, d2;
    d1.set("ts", Value(ts));
    d2.set("ts", Value(ts));
    ope_gw.insert("ope_col", d1);
    ore_gw.insert("ore_col", d2);
  }
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t lo = rng.range(-1200, 800);
    const std::int64_t hi = lo + rng.range(0, 600);
    const auto a = ope_gw.range_search("ope_col", "ts", Value(lo), Value(hi));
    const auto b = ore_gw.range_search("ore_col", "ts", Value(lo), Value(hi));
    EXPECT_EQ(a.size(), b.size()) << "[" << lo << "," << hi << "]";
  }
}

}  // namespace
}  // namespace datablinder::core
