// PolicyEngine tests — adaptive tactic selection (§3.2 / §5.1).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/status.hpp"
#include "core/policy.hpp"
#include "core/tactics/builtin.hpp"
#include "fhir/observation.hpp"

namespace datablinder::core {
namespace {

using schema::Aggregate;
using schema::FieldAnnotation;
using schema::FieldType;
using schema::Operation;
using schema::ProtectionClass;
using schema::Schema;

class PolicyFixture : public ::testing::Test {
 protected:
  PolicyFixture() : policy_(registry_) { register_builtin_tactics(registry_); }

  static FieldAnnotation ann(ProtectionClass c, std::set<Operation> ops,
                             std::set<Aggregate> aggs = {}) {
    FieldAnnotation a;
    a.sensitive = true;
    a.protection = c;
    a.operations = std::move(ops);
    a.aggregates = std::move(aggs);
    return a;
  }

  TacticRegistry registry_;
  PolicyEngine policy_;
};

TEST_F(PolicyFixture, Section51SelectionTableReproduced) {
  const CollectionPlan plan = policy_.select(fhir::observation_schema("obs"));

  // status -> BIEX-2Lev, "Boolean & cross-field".
  EXPECT_EQ(plan.fields.at("status").tactics, std::vector<std::string>{"BIEX-2Lev"});
  // code -> BIEX-2Lev.
  EXPECT_EQ(plan.fields.at("code").tactics, std::vector<std::string>{"BIEX-2Lev"});
  // subject -> Mitra, "Identifier protection level".
  EXPECT_EQ(plan.fields.at("subject").tactics, std::vector<std::string>{"Mitra"});
  EXPECT_NE(plan.fields.at("subject").reason.find("Identifier"), std::string::npos);
  // effective / issued -> DET, OPE, "Range queries".
  EXPECT_EQ(plan.fields.at("effective").tactics,
            (std::vector<std::string>{"DET", "OPE"}));
  EXPECT_EQ(plan.fields.at("issued").tactics, (std::vector<std::string>{"DET", "OPE"}));
  // performer -> RND, "Structure protection level".
  EXPECT_EQ(plan.fields.at("performer").tactics, std::vector<std::string>{"RND"});
  EXPECT_NE(plan.fields.at("performer").reason.find("Structure"), std::string::npos);
  // value -> BIEX-2Lev, Paillier, "Cloud-side averages".
  EXPECT_EQ(plan.fields.at("value").tactics,
            (std::vector<std::string>{"BIEX-2Lev", "Paillier"}));
  EXPECT_NE(plan.fields.at("value").reason.find("averages"), std::string::npos);

  // Non-sensitive fields are absent from the plan.
  EXPECT_EQ(plan.fields.count("identifier"), 0u);
  EXPECT_EQ(plan.fields.count("interpretation"), 0u);
}

TEST_F(PolicyFixture, MisRegisteredLeakageIsRejectedAtRegistration) {
  // The runtime twin of dblint's leakage-conformance pass: a Class-2
  // (identifier-protecting) tactic whose search leaks equalities exceeds
  // the schema ceiling and must never enter the registry. The same
  // descriptor shape, committed as a lint fixture, makes dblint fire.
  TacticDescriptor bad;
  bad.name = "EVIL";
  bad.protection_class = ProtectionClass::kClass2;
  bad.operations = {
      {TacticOperation::kInit, {LeakageLevel::kStructure, "O(n)", 1}},
      {TacticOperation::kEqualitySearch, {LeakageLevel::kEqualities, "O(1)", 1}},
  };
  try {
    registry_.register_field_tactic(bad, [](const GatewayContext&) {
      return std::unique_ptr<FieldTactic>();
    });
    FAIL() << "excess-leakage descriptor was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPolicyViolation);
    EXPECT_NE(std::string(e.what()).find("EVIL"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ceiling"), std::string::npos);
  }
  EXPECT_FALSE(registry_.has("EVIL"));

  // Update-family tolerance: the same equality leakage on kInsert is the
  // stateless-Mitra shape and is admissible for Class 2.
  TacticDescriptor ok = bad;
  ok.name = "OK";
  ok.operations = {
      {TacticOperation::kInsert, {LeakageLevel::kEqualities, "O(1)", 1}},
  };
  EXPECT_TRUE(validate_descriptor_leakage(ok).ok());

  // Every builtin registered by the fixture already passed the same gate;
  // re-validate explicitly so a ceiling edit that strands a builtin fails
  // here and not only at startup.
  for (const auto& name : registry_.names()) {
    EXPECT_TRUE(validate_descriptor_leakage(registry_.descriptor(name)).ok()) << name;
  }
}

TEST_F(PolicyFixture, LeastProtectiveEligibleTacticWins) {
  Schema s("t");
  s.field("f4", ann(ProtectionClass::kClass4, {Operation::kInsert, Operation::kEquality}));
  s.field("f3", ann(ProtectionClass::kClass3, {Operation::kInsert, Operation::kEquality}));
  s.field("f2", ann(ProtectionClass::kClass2, {Operation::kInsert, Operation::kEquality}));
  s.field("f1", ann(ProtectionClass::kClass1, {Operation::kInsert, Operation::kEquality}));
  const CollectionPlan plan = policy_.select(s);
  EXPECT_EQ(plan.fields.at("f4").eq_tactic, "DET");    // class 4 allowed
  EXPECT_EQ(plan.fields.at("f3").eq_tactic, "Mitra");  // class 3: best <= 3 is class-2 Mitra
  EXPECT_EQ(plan.fields.at("f2").eq_tactic, "Mitra");
  EXPECT_EQ(plan.fields.at("f1").eq_tactic, "RND");    // only class 1 fits
}

TEST_F(PolicyFixture, WeakestLinkEffectiveClass) {
  Schema s("t");
  s.field("f", ann(ProtectionClass::kClass5,
                   {Operation::kInsert, Operation::kEquality, Operation::kRange}));
  const CollectionPlan plan = policy_.select(s);
  // DET (C4) + OPE (C5): effective protection is the weakest, C5.
  EXPECT_EQ(plan.fields.at("f").effective, ProtectionClass::kClass5);
}

TEST_F(PolicyFixture, RangeBelowClass5SelectsBrcOrFails) {
  // Below C5 the order-leaking tactics are inadmissible; the SSE-based
  // RangeBRC (Class 3) steps in down to C3, below which nothing serves RG.
  Schema s4("t4");
  s4.field("f", ann(ProtectionClass::kClass4, {Operation::kInsert, Operation::kRange}));
  EXPECT_EQ(policy_.select(s4).fields.at("f").range_tactic, "RangeBRC");

  Schema s3("t3");
  s3.field("f", ann(ProtectionClass::kClass3, {Operation::kInsert, Operation::kRange}));
  EXPECT_EQ(policy_.select(s3).fields.at("f").range_tactic, "RangeBRC");

  Schema s2("t2");
  s2.field("f", ann(ProtectionClass::kClass2, {Operation::kInsert, Operation::kRange}));
  EXPECT_THROW(policy_.select(s2), Error);
}

TEST_F(PolicyFixture, BooleanBelowClass3IsViolation) {
  Schema s("t");
  s.field("f", ann(ProtectionClass::kClass2, {Operation::kInsert, Operation::kBoolean}));
  EXPECT_THROW(policy_.select(s), Error);
}

TEST_F(PolicyFixture, BooleanAtClass5PrefersDetCombination) {
  Schema s("t");
  s.field("f", ann(ProtectionClass::kClass5, {Operation::kInsert, Operation::kBoolean,
                                              Operation::kEquality}));
  const CollectionPlan plan = policy_.select(s);
  EXPECT_TRUE(plan.boolean_tactic.empty());
  EXPECT_EQ(plan.fields.at("f").eq_tactic, "DET");
}

TEST_F(PolicyFixture, MinMaxRequiresRangeTactic) {
  Schema s1("t1");
  s1.field("f", ann(ProtectionClass::kClass5, {Operation::kInsert, Operation::kRange},
                    {Aggregate::kMin, Aggregate::kMax}));
  const CollectionPlan plan = policy_.select(s1);
  EXPECT_TRUE(plan.fields.at("f").minmax_via_range);

  Schema s2("t2");
  s2.field("f", ann(ProtectionClass::kClass5, {Operation::kInsert}, {Aggregate::kMin}));
  EXPECT_THROW(policy_.select(s2), Error);
}

TEST_F(PolicyFixture, AggregatesSelectPaillier) {
  Schema s("t");
  s.field("f", ann(ProtectionClass::kClass1, {Operation::kInsert},
                   {Aggregate::kSum, Aggregate::kAverage, Aggregate::kCount}));
  const CollectionPlan plan = policy_.select(s);
  EXPECT_EQ(plan.fields.at("f").agg_tactic, "Paillier");
}

TEST_F(PolicyFixture, InsertOnlySensitiveFieldGetsRnd) {
  Schema s("t");
  s.field("f", ann(ProtectionClass::kClass1, {Operation::kInsert}));
  const CollectionPlan plan = policy_.select(s);
  EXPECT_EQ(plan.fields.at("f").tactics, std::vector<std::string>{"RND"});
  EXPECT_EQ(plan.fields.at("f").effective, ProtectionClass::kClass1);
}

TEST_F(PolicyFixture, CryptoAgilityPreferenceSwap) {
  // Crypto agility: a registry that ranks BIEX-ZMF above BIEX-2Lev flips
  // the boolean selection without any application change.
  TacticRegistry alt;
  register_det_tactic(alt);
  register_rnd_tactic(alt);
  register_mitra_tactic(alt);
  {
    TacticDescriptor d = [] {
      TacticRegistry tmp;
      register_biexzmf_tactic(tmp);
      return tmp.descriptor("BIEX-ZMF");
    }();
    d.preference = 100;  // promote ZMF
    alt.register_boolean_tactic(std::move(d), [](const GatewayContext&) {
      return std::unique_ptr<BooleanTactic>{};
    });
  }
  register_biex2lev_tactic(alt);
  register_ope_tactic(alt);
  register_ore_tactic(alt);
  register_paillier_tactic(alt);

  PolicyEngine alt_policy(alt);
  const CollectionPlan plan = alt_policy.select(fhir::observation_schema("obs"));
  EXPECT_EQ(plan.boolean_tactic, "BIEX-ZMF");
}

TEST_F(PolicyFixture, SelectionTableRenders) {
  const CollectionPlan plan = policy_.select(fhir::observation_schema("obs"));
  const std::string table = plan.to_table();
  EXPECT_NE(table.find("subject"), std::string::npos);
  EXPECT_NE(table.find("Mitra"), std::string::npos);
  EXPECT_NE(table.find("Reason"), std::string::npos);
}

TEST_F(PolicyFixture, RegistryIntrospection) {
  EXPECT_TRUE(registry_.has("DET"));
  EXPECT_FALSE(registry_.has("Nonexistent"));
  EXPECT_THROW(registry_.descriptor("Nonexistent"), Error);
  EXPECT_TRUE(registry_.is_boolean("BIEX-2Lev"));
  EXPECT_FALSE(registry_.is_boolean("DET"));
  EXPECT_EQ(registry_.names().size(), 10u);
  // Table 2 interface counts for our implementations.
  EXPECT_EQ(registry_.descriptor("DET").gateway_interfaces.size(), 9u);
  EXPECT_EQ(registry_.descriptor("DET").cloud_interfaces.size(), 6u);
  EXPECT_EQ(registry_.descriptor("Mitra").gateway_interfaces.size(), 7u);
  EXPECT_EQ(registry_.descriptor("Mitra").cloud_interfaces.size(), 5u);
  EXPECT_EQ(registry_.descriptor("Sophos").gateway_interfaces.size(), 6u);
  EXPECT_EQ(registry_.descriptor("Sophos").cloud_interfaces.size(), 4u);
  EXPECT_EQ(registry_.descriptor("BIEX-2Lev").gateway_interfaces.size(), 8u);
  EXPECT_EQ(registry_.descriptor("BIEX-2Lev").cloud_interfaces.size(), 5u);
  EXPECT_EQ(registry_.descriptor("OPE").gateway_interfaces.size(), 3u);
  EXPECT_EQ(registry_.descriptor("Paillier").cloud_interfaces.size(), 3u);
}

}  // namespace
}  // namespace datablinder::core
