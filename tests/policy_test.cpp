// PolicyEngine tests — adaptive tactic selection (§3.2 / §5.1), plus the
// cost-model half of selection (leakage filter first, cost ranking second).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/status.hpp"
#include "core/cost_model.hpp"
#include "core/metrics.hpp"
#include "core/policy.hpp"
#include "core/tactics/builtin.hpp"
#include "fhir/observation.hpp"

namespace datablinder::core {
namespace {

using schema::Aggregate;
using schema::FieldAnnotation;
using schema::FieldType;
using schema::Operation;
using schema::ProtectionClass;
using schema::Schema;

class PolicyFixture : public ::testing::Test {
 protected:
  PolicyFixture() : policy_(registry_) { register_builtin_tactics(registry_); }

  static FieldAnnotation ann(ProtectionClass c, std::set<Operation> ops,
                             std::set<Aggregate> aggs = {}) {
    FieldAnnotation a;
    a.sensitive = true;
    a.protection = c;
    a.operations = std::move(ops);
    a.aggregates = std::move(aggs);
    return a;
  }

  TacticRegistry registry_;
  PolicyEngine policy_;
};

TEST_F(PolicyFixture, Section51SelectionTableReproduced) {
  const CollectionPlan plan = policy_.select(fhir::observation_schema("obs"));

  // status -> BIEX-2Lev, "Boolean & cross-field".
  EXPECT_EQ(plan.fields.at("status").tactics, std::vector<std::string>{"BIEX-2Lev"});
  // code -> BIEX-2Lev.
  EXPECT_EQ(plan.fields.at("code").tactics, std::vector<std::string>{"BIEX-2Lev"});
  // subject -> Mitra, "Identifier protection level".
  EXPECT_EQ(plan.fields.at("subject").tactics, std::vector<std::string>{"Mitra"});
  EXPECT_NE(plan.fields.at("subject").reason.find("Identifier"), std::string::npos);
  // effective / issued -> DET, OPE, "Range queries".
  EXPECT_EQ(plan.fields.at("effective").tactics,
            (std::vector<std::string>{"DET", "OPE"}));
  EXPECT_EQ(plan.fields.at("issued").tactics, (std::vector<std::string>{"DET", "OPE"}));
  // performer -> RND, "Structure protection level".
  EXPECT_EQ(plan.fields.at("performer").tactics, std::vector<std::string>{"RND"});
  EXPECT_NE(plan.fields.at("performer").reason.find("Structure"), std::string::npos);
  // value -> BIEX-2Lev, Paillier, "Cloud-side averages".
  EXPECT_EQ(plan.fields.at("value").tactics,
            (std::vector<std::string>{"BIEX-2Lev", "Paillier"}));
  EXPECT_NE(plan.fields.at("value").reason.find("averages"), std::string::npos);

  // Non-sensitive fields are absent from the plan.
  EXPECT_EQ(plan.fields.count("identifier"), 0u);
  EXPECT_EQ(plan.fields.count("interpretation"), 0u);
}

TEST_F(PolicyFixture, MisRegisteredLeakageIsRejectedAtRegistration) {
  // The runtime twin of dblint's leakage-conformance pass: a Class-2
  // (identifier-protecting) tactic whose search leaks equalities exceeds
  // the schema ceiling and must never enter the registry. The same
  // descriptor shape, committed as a lint fixture, makes dblint fire.
  TacticDescriptor bad;
  bad.name = "EVIL";
  bad.protection_class = ProtectionClass::kClass2;
  bad.operations = {
      {TacticOperation::kInit, {LeakageLevel::kStructure, "O(n)", 1}},
      {TacticOperation::kEqualitySearch, {LeakageLevel::kEqualities, "O(1)", 1}},
  };
  try {
    registry_.register_field_tactic(bad, [](const GatewayContext&) {
      return std::unique_ptr<FieldTactic>();
    });
    FAIL() << "excess-leakage descriptor was accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPolicyViolation);
    EXPECT_NE(std::string(e.what()).find("EVIL"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("ceiling"), std::string::npos);
  }
  EXPECT_FALSE(registry_.has("EVIL"));

  // Update-family tolerance: the same equality leakage on kInsert is the
  // stateless-Mitra shape and is admissible for Class 2.
  TacticDescriptor ok = bad;
  ok.name = "OK";
  ok.operations = {
      {TacticOperation::kInsert, {LeakageLevel::kEqualities, "O(1)", 1}},
  };
  EXPECT_TRUE(validate_descriptor_leakage(ok).ok());

  // Every builtin registered by the fixture already passed the same gate;
  // re-validate explicitly so a ceiling edit that strands a builtin fails
  // here and not only at startup.
  for (const auto& name : registry_.names()) {
    EXPECT_TRUE(validate_descriptor_leakage(registry_.descriptor(name)).ok()) << name;
  }
}

TEST_F(PolicyFixture, LeastProtectiveEligibleTacticWins) {
  Schema s("t");
  s.field("f4", ann(ProtectionClass::kClass4, {Operation::kInsert, Operation::kEquality}));
  s.field("f3", ann(ProtectionClass::kClass3, {Operation::kInsert, Operation::kEquality}));
  s.field("f2", ann(ProtectionClass::kClass2, {Operation::kInsert, Operation::kEquality}));
  s.field("f1", ann(ProtectionClass::kClass1, {Operation::kInsert, Operation::kEquality}));
  const CollectionPlan plan = policy_.select(s);
  EXPECT_EQ(plan.fields.at("f4").eq_tactic, "DET");    // class 4 allowed
  EXPECT_EQ(plan.fields.at("f3").eq_tactic, "Mitra");  // class 3: best <= 3 is class-2 Mitra
  EXPECT_EQ(plan.fields.at("f2").eq_tactic, "Mitra");
  EXPECT_EQ(plan.fields.at("f1").eq_tactic, "RND");    // only class 1 fits
}

TEST_F(PolicyFixture, WeakestLinkEffectiveClass) {
  Schema s("t");
  s.field("f", ann(ProtectionClass::kClass5,
                   {Operation::kInsert, Operation::kEquality, Operation::kRange}));
  const CollectionPlan plan = policy_.select(s);
  // DET (C4) + OPE (C5): effective protection is the weakest, C5.
  EXPECT_EQ(plan.fields.at("f").effective, ProtectionClass::kClass5);
}

TEST_F(PolicyFixture, RangeBelowClass5SelectsBrcOrFails) {
  // Below C5 the order-leaking tactics are inadmissible; the SSE-based
  // RangeBRC (Class 3) steps in down to C3, below which nothing serves RG.
  Schema s4("t4");
  s4.field("f", ann(ProtectionClass::kClass4, {Operation::kInsert, Operation::kRange}));
  EXPECT_EQ(policy_.select(s4).fields.at("f").range_tactic, "RangeBRC");

  Schema s3("t3");
  s3.field("f", ann(ProtectionClass::kClass3, {Operation::kInsert, Operation::kRange}));
  EXPECT_EQ(policy_.select(s3).fields.at("f").range_tactic, "RangeBRC");

  Schema s2("t2");
  s2.field("f", ann(ProtectionClass::kClass2, {Operation::kInsert, Operation::kRange}));
  EXPECT_THROW(policy_.select(s2), Error);
}

TEST_F(PolicyFixture, BooleanBelowClass3IsViolation) {
  Schema s("t");
  s.field("f", ann(ProtectionClass::kClass2, {Operation::kInsert, Operation::kBoolean}));
  EXPECT_THROW(policy_.select(s), Error);
}

TEST_F(PolicyFixture, BooleanAtClass5PrefersDetCombination) {
  Schema s("t");
  s.field("f", ann(ProtectionClass::kClass5, {Operation::kInsert, Operation::kBoolean,
                                              Operation::kEquality}));
  const CollectionPlan plan = policy_.select(s);
  EXPECT_TRUE(plan.boolean_tactic.empty());
  EXPECT_EQ(plan.fields.at("f").eq_tactic, "DET");
}

TEST_F(PolicyFixture, MinMaxRequiresRangeTactic) {
  Schema s1("t1");
  s1.field("f", ann(ProtectionClass::kClass5, {Operation::kInsert, Operation::kRange},
                    {Aggregate::kMin, Aggregate::kMax}));
  const CollectionPlan plan = policy_.select(s1);
  EXPECT_TRUE(plan.fields.at("f").minmax_via_range);

  Schema s2("t2");
  s2.field("f", ann(ProtectionClass::kClass5, {Operation::kInsert}, {Aggregate::kMin}));
  EXPECT_THROW(policy_.select(s2), Error);
}

TEST_F(PolicyFixture, AggregatesSelectPaillier) {
  Schema s("t");
  s.field("f", ann(ProtectionClass::kClass1, {Operation::kInsert},
                   {Aggregate::kSum, Aggregate::kAverage, Aggregate::kCount}));
  const CollectionPlan plan = policy_.select(s);
  EXPECT_EQ(plan.fields.at("f").agg_tactic, "Paillier");
}

TEST_F(PolicyFixture, InsertOnlySensitiveFieldGetsRnd) {
  Schema s("t");
  s.field("f", ann(ProtectionClass::kClass1, {Operation::kInsert}));
  const CollectionPlan plan = policy_.select(s);
  EXPECT_EQ(plan.fields.at("f").tactics, std::vector<std::string>{"RND"});
  EXPECT_EQ(plan.fields.at("f").effective, ProtectionClass::kClass1);
}

TEST_F(PolicyFixture, CryptoAgilityPreferenceSwap) {
  // Crypto agility: a registry that ranks BIEX-ZMF above BIEX-2Lev flips
  // the boolean selection without any application change.
  TacticRegistry alt;
  register_det_tactic(alt);
  register_rnd_tactic(alt);
  register_mitra_tactic(alt);
  {
    TacticDescriptor d = [] {
      TacticRegistry tmp;
      register_biexzmf_tactic(tmp);
      return tmp.descriptor("BIEX-ZMF");
    }();
    d.preference = 100;  // promote ZMF
    alt.register_boolean_tactic(std::move(d), [](const GatewayContext&) {
      return std::unique_ptr<BooleanTactic>{};
    });
  }
  register_biex2lev_tactic(alt);
  register_ope_tactic(alt);
  register_ore_tactic(alt);
  register_paillier_tactic(alt);

  PolicyEngine alt_policy(alt);
  const CollectionPlan plan = alt_policy.select(fhir::observation_schema("obs"));
  EXPECT_EQ(plan.boolean_tactic, "BIEX-ZMF");
}

TEST_F(PolicyFixture, SelectionTableRenders) {
  const CollectionPlan plan = policy_.select(fhir::observation_schema("obs"));
  const std::string table = plan.to_table();
  EXPECT_NE(table.find("subject"), std::string::npos);
  EXPECT_NE(table.find("Mitra"), std::string::npos);
  EXPECT_NE(table.find("Reason"), std::string::npos);
  // Column 4: before any adaptive planning, range rows read "static table"
  // and non-range rows carry the placeholder.
  EXPECT_NE(table.find("Predicted cost / chosen-by"), std::string::npos);
  EXPECT_NE(table.find("static table"), std::string::npos);
}

TEST_F(PolicyFixture, SelectionTableShowsLiveAdaptiveAnnotation) {
  CollectionPlan plan = policy_.select(fhir::observation_schema("obs"));
  FieldPlan& fp = plan.fields.at("effective");
  fp.range_last_choice = "ORE";
  fp.range_chosen_by = "cost-model";
  fp.range_predicted_us = 420.0;
  const std::string table = plan.to_table();
  EXPECT_NE(table.find("ORE 420us (cost-model)"), std::string::npos);
}

TEST_F(PolicyFixture, RangeCandidatesListAdmissibleAlternatives) {
  const CollectionPlan plan = policy_.select(fhir::observation_schema("obs"));
  // C5 range field: every registered range tactic is admissible. The
  // static choice leads; the rest follow in static ranking order.
  const auto& cands = plan.fields.at("effective").range_candidates;
  ASSERT_GE(cands.size(), 3u);
  EXPECT_EQ(cands[0], plan.fields.at("effective").range_tactic);
  EXPECT_EQ(cands[0], "OPE");
  EXPECT_EQ(cands[1], "ORE");       // same class, lower preference
  EXPECT_EQ(cands[2], "RangeBRC");  // lower class, still admissible

  // C3 bound: only RangeBRC clears the leakage filter — the candidate set
  // shrinks with the bound, so the cost model can never pick a tactic the
  // admissibility filter rejected.
  Schema s("bounded");
  s.field("ts", ann(ProtectionClass::kClass3, {Operation::kInsert, Operation::kRange}));
  const CollectionPlan bounded = policy_.select(s);
  EXPECT_EQ(bounded.fields.at("ts").range_candidates,
            std::vector<std::string>{"RangeBRC"});
}

// --- CostModel: cost-ranked choice among admissible candidates -------------

namespace cost {

CostProfile constant_profile(double us) {
  CostProfile p;
  p.ops[TacticOperation::kRangeQuery] = {CostShape::kConstant, us, 0.0};
  return p;
}

}  // namespace cost

TEST(CostModelTest, PriorShapesScaleWithCardinality) {
  CostProfile p;
  p.ops[TacticOperation::kRangeQuery] = {CostShape::kConstant, 7.0, 3.0};
  EXPECT_DOUBLE_EQ(p.predict_us(TacticOperation::kRangeQuery, 1000, 0.1), 7.0);
  p.ops[TacticOperation::kRangeQuery] = {CostShape::kLinear, 10.0, 2.0};
  EXPECT_DOUBLE_EQ(p.predict_us(TacticOperation::kRangeQuery, 100, 0.1), 210.0);
  p.ops[TacticOperation::kRangeQuery] = {CostShape::kLogN, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(p.predict_us(TacticOperation::kRangeQuery, 1023, 0.1),
                   5.0 + std::log2(1024.0));
  p.ops[TacticOperation::kRangeQuery] = {CostShape::kLogNPlusK, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(p.predict_us(TacticOperation::kRangeQuery, 1023, 0.5),
                   2.0 * (std::log2(1024.0) + 0.5 * 1023.0));
  // Un-costed operations predict free rather than throwing.
  EXPECT_DOUBLE_EQ(p.predict_us(TacticOperation::kInsert, 1000, 0.1), 0.0);
}

TEST(CostModelTest, SustainedWinSwitchesAfterHysteresisWindows) {
  PerfRegistry perf;
  CostModel model(perf);  // margin 0.15, windows 3
  const CostProfile slow = cost::constant_profile(100.0);
  const CostProfile fast = cost::constant_profile(50.0);
  const std::vector<CostCandidate> cands = {{"OPE", &slow}, {"ORE", &fast}};

  // Decisions 1–2: the cheaper challenger is held back by hysteresis.
  for (int i = 0; i < 2; ++i) {
    const CostDecision d =
        model.choose("obs/f/range", "OPE", cands, TacticOperation::kRangeQuery, 100);
    EXPECT_EQ(d.chosen, "OPE") << i;
    EXPECT_EQ(d.chosen_by, "hysteresis-hold") << i;
  }
  // Decision 3: the win is sustained — switch, and report the model's own
  // prediction for the new choice.
  const CostDecision d =
      model.choose("obs/f/range", "OPE", cands, TacticOperation::kRangeQuery, 100);
  EXPECT_EQ(d.chosen, "ORE");
  EXPECT_EQ(d.chosen_by, "cost-model");
  EXPECT_DOUBLE_EQ(d.predicted_us, 50.0);
}

TEST(CostModelTest, AlternatingFastSlowWindowsNeverFlap) {
  PerfRegistry perf;
  CostModel model(perf);
  const CostProfile a = cost::constant_profile(100.0);
  const CostProfile b_cheap = cost::constant_profile(50.0);
  const CostProfile b_dear = cost::constant_profile(200.0);

  // The challenger alternates between clearly-cheaper and clearly-dearer
  // every decision — its streak resets each time the incumbent wins, so
  // the selection must never oscillate away from the static choice.
  for (int i = 0; i < 24; ++i) {
    const std::vector<CostCandidate> cands = {
        {"OPE", &a}, {"ORE", (i % 2 == 0) ? &b_cheap : &b_dear}};
    const CostDecision d =
        model.choose("obs/f/range", "OPE", cands, TacticOperation::kRangeQuery, 100);
    EXPECT_EQ(d.chosen, "OPE") << "decision " << i;
  }
}

TEST(CostModelTest, SubMarginWinsNeverSwitch) {
  PerfRegistry perf;
  CostModel model(perf);
  const CostProfile a = cost::constant_profile(100.0);
  const CostProfile b = cost::constant_profile(90.0);  // 10% win < 15% margin
  const std::vector<CostCandidate> cands = {{"OPE", &a}, {"ORE", &b}};
  for (int i = 0; i < 10; ++i) {
    const CostDecision d =
        model.choose("obs/f/range", "OPE", cands, TacticOperation::kRangeQuery, 100);
    EXPECT_EQ(d.chosen, "OPE") << i;
  }
}

TEST(CostModelTest, LiveEvidenceOverridesStalePriors) {
  PerfRegistry perf;
  // The prior says OPE is the cheap choice, but observed whole-plan
  // latency (the "plan.OPE" series the gateway records) says otherwise:
  // a full window of 10ms samples.
  for (std::size_t i = 0; i < PerfSeries::kWindow; ++i) {
    perf.record(CostModel::plan_series("OPE"), TacticOperation::kRangeQuery,
                10'000'000);
  }
  CostModel model(perf);
  const CostProfile ope = cost::constant_profile(50.0);
  const CostProfile ore = cost::constant_profile(100.0);
  const std::vector<CostCandidate> cands = {{"OPE", &ope}, {"ORE", &ore}};
  CostDecision d;
  for (int i = 0; i < model.config().hysteresis_windows; ++i) {
    d = model.choose("obs/f/range", "OPE", cands, TacticOperation::kRangeQuery, 100);
  }
  EXPECT_EQ(d.chosen, "ORE");
  EXPECT_EQ(d.chosen_by, "cost-model");

  // Blended prediction for OPE sits near the observed EWMA, far from the
  // prior: w = 128/(128+8) of 10'000us.
  EXPECT_GT(model.predict_us({"OPE", &ope}, TacticOperation::kRangeQuery, 100),
            5'000.0);
}

TEST_F(PolicyFixture, RegistryIntrospection) {
  EXPECT_TRUE(registry_.has("DET"));
  EXPECT_FALSE(registry_.has("Nonexistent"));
  EXPECT_THROW(registry_.descriptor("Nonexistent"), Error);
  EXPECT_TRUE(registry_.is_boolean("BIEX-2Lev"));
  EXPECT_FALSE(registry_.is_boolean("DET"));
  EXPECT_EQ(registry_.names().size(), 10u);
  // Table 2 interface counts for our implementations.
  EXPECT_EQ(registry_.descriptor("DET").gateway_interfaces.size(), 9u);
  EXPECT_EQ(registry_.descriptor("DET").cloud_interfaces.size(), 6u);
  EXPECT_EQ(registry_.descriptor("Mitra").gateway_interfaces.size(), 7u);
  EXPECT_EQ(registry_.descriptor("Mitra").cloud_interfaces.size(), 5u);
  EXPECT_EQ(registry_.descriptor("Sophos").gateway_interfaces.size(), 6u);
  EXPECT_EQ(registry_.descriptor("Sophos").cloud_interfaces.size(), 4u);
  EXPECT_EQ(registry_.descriptor("BIEX-2Lev").gateway_interfaces.size(), 8u);
  EXPECT_EQ(registry_.descriptor("BIEX-2Lev").cloud_interfaces.size(), 5u);
  EXPECT_EQ(registry_.descriptor("OPE").gateway_interfaces.size(), 3u);
  EXPECT_EQ(registry_.descriptor("Paillier").cloud_interfaces.size(), 3u);
}

}  // namespace
}  // namespace datablinder::core
