// Paillier cryptosystem: correctness, homomorphic identities, signed
// encoding and parameterized sweeps over modulus sizes.
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "phe/paillier.hpp"

namespace datablinder::phe {
namespace {

class PaillierFixture : public ::testing::Test {
 protected:
  static const PaillierKeyPair& keys() {
    static const PaillierKeyPair kp = paillier_generate(256);
    return kp;
  }
};

TEST_F(PaillierFixture, EncryptDecryptRoundTrip) {
  for (std::int64_t m : {0LL, 1LL, -1LL, 42LL, -9999LL, 1234567890LL}) {
    EXPECT_EQ(keys().priv.decrypt_i64(keys().pub.encrypt_i64(m)), m) << m;
  }
}

TEST_F(PaillierFixture, EncryptionIsProbabilistic) {
  const auto c1 = keys().pub.encrypt_i64(7);
  const auto c2 = keys().pub.encrypt_i64(7);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(keys().priv.decrypt_i64(c1), keys().priv.decrypt_i64(c2));
}

TEST_F(PaillierFixture, HomomorphicAddition) {
  DetRng rng(11);
  for (int i = 0; i < 25; ++i) {
    const std::int64_t a = rng.range(-100000, 100000);
    const std::int64_t b = rng.range(-100000, 100000);
    const auto sum = keys().pub.add(keys().pub.encrypt_i64(a), keys().pub.encrypt_i64(b));
    EXPECT_EQ(keys().priv.decrypt_i64(sum), a + b);
  }
}

TEST_F(PaillierFixture, HomomorphicPlaintextOps) {
  const auto c = keys().pub.encrypt_i64(100);
  EXPECT_EQ(keys().priv.decrypt_i64(keys().pub.add_plain(c, BigInt(23))), 123);
  EXPECT_EQ(keys().priv.decrypt_i64(keys().pub.mul_plain(c, BigInt(7))), 700);
  EXPECT_EQ(keys().priv.decrypt_i64(keys().pub.mul_plain(c, BigInt(0))), 0);
}

TEST_F(PaillierFixture, RerandomizationPreservesPlaintext) {
  const auto c = keys().pub.encrypt_i64(555);
  const auto r = keys().pub.rerandomize(c);
  EXPECT_NE(c, r);
  EXPECT_EQ(keys().priv.decrypt_i64(r), 555);
}

TEST_F(PaillierFixture, EncryptZeroIsAdditiveIdentity) {
  const auto c = keys().pub.encrypt_i64(321);
  const auto z = keys().pub.encrypt_zero();
  EXPECT_EQ(keys().priv.decrypt_i64(keys().pub.add(c, z)), 321);
}

TEST_F(PaillierFixture, LongAccumulationMatchesPlaintextSum) {
  // The aggregate tactic's exact usage: fold many encrypted values.
  DetRng rng(3);
  BigInt acc(1);
  std::int64_t expected = 0;
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = rng.range(0, 10000);
    expected += v;
    acc = keys().pub.add(acc == BigInt(1) ? keys().pub.encrypt_i64(v)
                                          : keys().pub.encrypt_i64(v),
                         acc == BigInt(1) ? keys().pub.encrypt_zero() : acc);
  }
  EXPECT_EQ(keys().priv.decrypt_i64(acc), expected);
}

TEST_F(PaillierFixture, HalfRangeBoundaryDecode) {
  // The signed-decode cut is symmetric: with n odd, positives occupy
  // [0, n/2] and everything above decodes as m - n. Probe both sides of
  // the threshold exactly.
  const BigInt n = keys().pub.n;
  const BigInt half = n >> 1;  // floor(n/2) = (n-1)/2
  EXPECT_EQ(keys().priv.decrypt(keys().pub.encrypt(half)), half);
  EXPECT_EQ(keys().priv.decrypt(keys().pub.encrypt(half - BigInt(1))), half - BigInt(1));
  // One past the cut is the most-negative representable value, -(n-1)/2.
  EXPECT_EQ(keys().priv.decrypt(keys().pub.encrypt(half + BigInt(1))), -half);
  EXPECT_EQ(keys().priv.decrypt(keys().pub.encrypt(half + BigInt(2))),
            BigInt(1) - half);
  // Negative inputs encode as n - |m| and come back signed.
  EXPECT_EQ(keys().priv.decrypt(keys().pub.encrypt(-half)), -half);
}

TEST_F(PaillierFixture, Int64ExtremesRoundTrip) {
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  for (const std::int64_t m :
       {lo, lo + 1, std::int64_t{-1}, std::int64_t{0}, std::int64_t{1}, hi - 1, hi}) {
    EXPECT_EQ(keys().priv.decrypt_i64(keys().pub.encrypt_i64(m)), m) << m;
  }
}

TEST_F(PaillierFixture, RejectsOutOfRangeCiphertext) {
  EXPECT_THROW(keys().priv.decrypt(BigInt(0)), Error);
  EXPECT_THROW(keys().priv.decrypt(keys().pub.n_squared + BigInt(1)), Error);
}

TEST(PaillierTest, RejectsTinyModulus) {
  EXPECT_THROW(paillier_generate(32), Error);
}

// Property sweep: the homomorphism holds at every modulus size we deploy.
class PaillierSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PaillierSizeSweep, HomomorphismHolds) {
  const PaillierKeyPair kp = paillier_generate(GetParam());
  DetRng rng(GetParam());
  std::int64_t expected = 0;
  BigInt acc = kp.pub.encrypt_zero();
  for (int i = 0; i < 10; ++i) {
    const std::int64_t v = rng.range(-5000, 5000);
    expected += v;
    acc = kp.pub.add(acc, kp.pub.encrypt_i64(v));
  }
  EXPECT_EQ(kp.priv.decrypt_i64(acc), expected);
}

INSTANTIATE_TEST_SUITE_P(ModulusSizes, PaillierSizeSweep,
                         ::testing::Values(128, 256, 512));

}  // namespace
}  // namespace datablinder::phe
