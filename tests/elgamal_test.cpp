// ElGamal tests: multiplicative and exponential homomorphisms, key
// generation structure, re-randomization.
#include <gtest/gtest.h>

#include "bigint/prime.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "phe/elgamal.hpp"

namespace datablinder::phe {
namespace {

const ElGamalKeyPair& keys() {
  static const ElGamalKeyPair kp = elgamal_generate(192);
  return kp;
}

TEST(ElGamalTest, SafePrimeGroupStructure) {
  const auto& pub = keys().pub;
  EXPECT_TRUE(bigint::is_probable_prime(pub.p));
  EXPECT_TRUE(bigint::is_probable_prime((pub.p - BigInt(1)) >> 1));  // safe prime
  // g generates the order-q subgroup: g^q == 1.
  const BigInt q = (pub.p - BigInt(1)) >> 1;
  EXPECT_EQ(pub.g.pow_mod(q, pub.p), BigInt(1));
  EXPECT_NE(pub.g, BigInt(1));
}

TEST(ElGamalTest, MultiplicativeRoundTrip) {
  for (std::int64_t m : {1, 2, 42, 99999}) {
    const auto c = keys().pub.encrypt(BigInt(m));
    EXPECT_EQ(keys().priv.decrypt(c), BigInt(m)) << m;
  }
  EXPECT_THROW(keys().pub.encrypt(BigInt(0)), Error);
  EXPECT_THROW(keys().pub.encrypt(keys().pub.p), Error);
}

TEST(ElGamalTest, EncryptionIsProbabilistic) {
  const auto a = keys().pub.encrypt(BigInt(7));
  const auto b = keys().pub.encrypt(BigInt(7));
  EXPECT_NE(a, b);
  EXPECT_EQ(keys().priv.decrypt(a), keys().priv.decrypt(b));
}

TEST(ElGamalTest, MultiplicativeHomomorphism) {
  DetRng rng(4);
  for (int i = 0; i < 20; ++i) {
    const std::int64_t a = rng.range(1, 100000);
    const std::int64_t b = rng.range(1, 100000);
    const auto product =
        keys().pub.multiply(keys().pub.encrypt(BigInt(a)), keys().pub.encrypt(BigInt(b)));
    EXPECT_EQ(keys().priv.decrypt(product), BigInt(a) * BigInt(b));
  }
}

TEST(ElGamalTest, ExponentialModeAddsPlaintexts) {
  // The lifted variant: counters summed under encryption.
  auto acc = keys().pub.encrypt_exponent(0);
  std::uint64_t expected = 0;
  DetRng rng(5);
  for (int i = 0; i < 15; ++i) {
    const std::uint64_t v = rng.uniform(20);
    expected += v;
    acc = keys().pub.multiply(acc, keys().pub.encrypt_exponent(v));
  }
  const auto decoded = keys().priv.decrypt_exponent(acc, 1000);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, expected);
}

TEST(ElGamalTest, ExponentBoundRespected) {
  const auto c = keys().pub.encrypt_exponent(500);
  EXPECT_FALSE(keys().priv.decrypt_exponent(c, 100).has_value());
  EXPECT_EQ(keys().priv.decrypt_exponent(c, 500), 500u);
}

TEST(ElGamalTest, RerandomizationPreservesPlaintext) {
  const auto c = keys().pub.encrypt(BigInt(321));
  const auto r = keys().pub.rerandomize(c);
  EXPECT_NE(c, r);
  EXPECT_EQ(keys().priv.decrypt(r), BigInt(321));
}

TEST(ElGamalTest, RejectsTinyPrimes) {
  EXPECT_THROW(elgamal_generate(32), Error);
}

}  // namespace
}  // namespace datablinder::phe
