// Storage substrate tests: KvStore (including AOF persistence) and
// DocumentStore (filters, secondary indexes).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/status.hpp"
#include "store/docstore.hpp"
#include "store/kvstore.hpp"

namespace datablinder::store {
namespace {

using doc::Document;
using doc::Value;

TEST(KvStoreTest, Strings) {
  KvStore kv;
  EXPECT_FALSE(kv.get("k").has_value());
  kv.set("k", Bytes{1, 2});
  EXPECT_EQ(kv.get("k"), (Bytes{1, 2}));
  EXPECT_TRUE(kv.exists("k"));
  EXPECT_TRUE(kv.del("k"));
  EXPECT_FALSE(kv.del("k"));
  EXPECT_FALSE(kv.exists("k"));
}

TEST(KvStoreTest, Hashes) {
  KvStore kv;
  kv.hset("h", "f1", Bytes{1});
  kv.hset("h", "f2", Bytes{2});
  EXPECT_EQ(kv.hget("h", "f1"), Bytes{1});
  EXPECT_FALSE(kv.hget("h", "nope").has_value());
  EXPECT_EQ(kv.hgetall("h").size(), 2u);
  EXPECT_TRUE(kv.hdel("h", "f1"));
  EXPECT_FALSE(kv.hdel("h", "f1"));
  EXPECT_EQ(kv.hgetall("h").size(), 1u);
}

TEST(KvStoreTest, Sets) {
  KvStore kv;
  kv.sadd("s", "a");
  kv.sadd("s", "b");
  kv.sadd("s", "a");  // idempotent
  EXPECT_EQ(kv.scard("s"), 2u);
  EXPECT_TRUE(kv.srem("s", "a"));
  EXPECT_EQ(kv.smembers("s"), (std::set<std::string>{"b"}));
}

TEST(KvStoreTest, SortedSetsRangeQueries) {
  KvStore kv;
  kv.zadd("z", Bytes{0x10}, "low");
  kv.zadd("z", Bytes{0x20}, "mid1");
  kv.zadd("z", Bytes{0x20}, "mid2");
  kv.zadd("z", Bytes{0x30}, "high");
  EXPECT_EQ(kv.zcard("z"), 4u);

  const auto mid = kv.zrange("z", Bytes{0x15}, Bytes{0x25});
  EXPECT_EQ(mid.size(), 2u);
  const auto all = kv.zrange("z", Bytes{0x00}, Bytes{0xff});
  EXPECT_EQ(all.size(), 4u);
  EXPECT_EQ(all.front(), "low");
  EXPECT_EQ(all.back(), "high");

  ASSERT_TRUE(kv.zmin("z").has_value());
  EXPECT_EQ(kv.zmin("z")->second, "low");
  EXPECT_EQ(kv.zmax("z")->second, "high");

  EXPECT_TRUE(kv.zrem("z", Bytes{0x20}, "mid1"));
  EXPECT_EQ(kv.zcard("z"), 3u);
  EXPECT_FALSE(kv.zmin("empty").has_value());
}

TEST(KvStoreTest, Counters) {
  KvStore kv;
  EXPECT_EQ(kv.incr("c"), 1);
  EXPECT_EQ(kv.incr("c", 10), 11);
  EXPECT_EQ(kv.incr("c", -1), 10);
}

TEST(KvStoreTest, AofPersistenceReplaysAcrossReopen) {
  const std::string path = "/tmp/datablinder_kv_test.aof";
  std::remove(path.c_str());
  {
    KvStore kv(path);
    kv.set("k", Bytes{9});
    kv.hset("h", "f", Bytes{8});
    kv.sadd("s", "m");
    kv.zadd("z", Bytes{0x42}, "member");
    kv.incr("c", 5);
    kv.set("gone", Bytes{1});
    kv.del("gone");
  }
  KvStore kv(path);
  EXPECT_EQ(kv.get("k"), Bytes{9});
  EXPECT_EQ(kv.hget("h", "f"), Bytes{8});
  EXPECT_EQ(kv.smembers("s"), (std::set<std::string>{"m"}));
  EXPECT_EQ(kv.zrange("z", Bytes{0x00}, Bytes{0xff}).size(), 1u);
  EXPECT_EQ(kv.incr("c", 0), 5);
  EXPECT_FALSE(kv.exists("gone"));
  std::remove(path.c_str());
}

TEST(KvStoreTest, FlushAllClearsEverything) {
  KvStore kv;
  kv.set("a", Bytes{1});
  kv.sadd("s", "x");
  kv.flush_all();
  EXPECT_FALSE(kv.exists("a"));
  EXPECT_EQ(kv.scard("s"), 0u);
  EXPECT_EQ(kv.storage_bytes(), 0u);
}

// --- DocumentStore -----------------------------------------------------------

Document make_doc(const std::string& id, const std::string& name, std::int64_t age) {
  Document d;
  d.id = id;
  d.set("name", Value(name));
  d.set("age", Value(age));
  return d;
}

TEST(CollectionTest, PutGetErase) {
  Collection c("people");
  c.put(make_doc("1", "alice", 30));
  EXPECT_EQ(c.size(), 1u);
  ASSERT_TRUE(c.get("1").has_value());
  EXPECT_EQ(c.get("1")->at("name").as_string(), "alice");
  c.put(make_doc("1", "alicia", 31));  // replace
  EXPECT_EQ(c.get("1")->at("name").as_string(), "alicia");
  EXPECT_TRUE(c.erase("1"));
  EXPECT_FALSE(c.erase("1"));
  EXPECT_THROW(c.put(Document{}), Error);  // empty id
}

TEST(CollectionTest, FilterSemantics) {
  Collection c("people");
  c.put(make_doc("1", "alice", 30));
  c.put(make_doc("2", "bob", 40));
  c.put(make_doc("3", "carol", 50));

  EXPECT_EQ(c.find(Filter::all()).size(), 3u);
  EXPECT_EQ(c.find(Filter::eq("name", Value("bob"))).size(), 1u);
  EXPECT_EQ(c.find(Filter::range("age", Value(std::int64_t{35}), Value(std::int64_t{55})))
                .size(),
            2u);
  EXPECT_EQ(c.find(Filter::range("age", std::nullopt, Value(std::int64_t{39}))).size(), 1u);
  EXPECT_EQ(c.find(Filter::and_of({Filter::eq("name", Value("bob")),
                                   Filter::range("age", Value(std::int64_t{0}),
                                                 Value(std::int64_t{100}))}))
                .size(),
            1u);
  EXPECT_EQ(c.find(Filter::or_of({Filter::eq("name", Value("alice")),
                                  Filter::eq("name", Value("carol"))}))
                .size(),
            2u);
  EXPECT_EQ(c.find(Filter::not_of(Filter::eq("name", Value("bob")))).size(), 2u);
}

TEST(CollectionTest, IndexedAndScannedQueriesAgree) {
  Collection indexed("a"), scanned("b");
  indexed.create_index("age");
  for (int i = 0; i < 200; ++i) {
    auto d = make_doc(std::to_string(i), i % 2 ? "odd" : "even", i % 37);
    indexed.put(d);
    scanned.put(d);
  }
  for (std::int64_t lo = 0; lo < 37; lo += 5) {
    const auto f = Filter::range("age", Value(lo), Value(lo + 7));
    EXPECT_EQ(indexed.find(f).size(), scanned.find(f).size()) << lo;
  }
  const auto eq = Filter::eq("age", Value(std::int64_t{5}));
  EXPECT_EQ(indexed.find(eq).size(), scanned.find(eq).size());
}

TEST(CollectionTest, IndexBackfillAndMaintenance) {
  Collection c("x");
  c.put(make_doc("1", "a", 10));
  c.create_index("age");  // backfills existing doc
  EXPECT_EQ(c.find(Filter::eq("age", Value(std::int64_t{10}))).size(), 1u);
  c.erase("1");
  EXPECT_TRUE(c.find(Filter::eq("age", Value(std::int64_t{10}))).empty());
  // Replacement updates the index entry.
  c.put(make_doc("2", "b", 20));
  c.put(make_doc("2", "b", 21));
  EXPECT_TRUE(c.find(Filter::eq("age", Value(std::int64_t{20}))).empty());
  EXPECT_EQ(c.find(Filter::eq("age", Value(std::int64_t{21}))).size(), 1u);
}

TEST(CollectionTest, MixedNumericIndexOrdering) {
  Collection c("nums");
  c.create_index("v");
  Document a; a.id = "a"; a.set("v", Value(std::int64_t{-5})); c.put(a);
  Document b; b.id = "b"; b.set("v", Value(2.5)); c.put(b);
  Document d; d.id = "d"; d.set("v", Value(std::int64_t{10})); c.put(d);
  // Range across negative ints and doubles via the order-preserving key.
  EXPECT_EQ(c.find(Filter::range("v", Value(std::int64_t{-10}), Value(3.0))).size(), 2u);
}

TEST(CompareValuesTest, Rules) {
  EXPECT_LT(compare_values(Value(std::int64_t{1}), Value(2.5)), 0);
  EXPECT_EQ(compare_values(Value(std::int64_t{2}), Value(2.0)), 0);
  EXPECT_GT(compare_values(Value("b"), Value("a")), 0);
  EXPECT_THROW(compare_values(Value("a"), Value(std::int64_t{1})), Error);
}

TEST(DocumentStoreTest, CollectionsAreIsolated) {
  DocumentStore store;
  store.collection("a").put(make_doc("1", "x", 1));
  EXPECT_TRUE(store.has_collection("a"));
  EXPECT_FALSE(store.has_collection("b"));
  EXPECT_EQ(store.collection("b").size(), 0u);
  EXPECT_EQ(store.collection("a").size(), 1u);
  EXPECT_GT(store.storage_bytes(), 0u);
}

}  // namespace
}  // namespace datablinder::store
