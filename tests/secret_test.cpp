// SecretBytes taint-type tests: zeroize-on-deallocate (observed through the
// wipe hook), move semantics, redacted formatting, constant-time equality.
#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/secret.hpp"

namespace datablinder {
namespace {

// The wipe hook fires after secure_wipe and before the buffer returns to
// the heap; recording what it saw lets us assert zeroization without ever
// touching freed memory.
struct WipeRecord {
  std::size_t size = 0;
  bool all_zero = true;
};
std::vector<WipeRecord>* g_wipes = nullptr;

void record_wipe(const std::uint8_t* data, std::size_t size) {
  if (!g_wipes) return;
  WipeRecord rec;
  rec.size = size;
  for (std::size_t i = 0; i < size; ++i) {
    if (data[i] != 0) rec.all_zero = false;
  }
  g_wipes->push_back(rec);
}

class SecretBytesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_wipes = &wipes_;
    secret_detail::set_wipe_hook(&record_wipe);
  }
  void TearDown() override {
    secret_detail::set_wipe_hook(nullptr);
    g_wipes = nullptr;
  }
  std::vector<WipeRecord> wipes_;
};

TEST_F(SecretBytesTest, WipesOnDestruction) {
  {
    SecretBytes s(Bytes(32, 0xAB));
    ASSERT_EQ(s.size(), 32u);
  }
  // At least one wipe of a >=32-byte region, and every wiped region was
  // actually zero when the hook saw it.
  bool saw_buffer = false;
  for (const auto& w : wipes_) {
    EXPECT_TRUE(w.all_zero) << "wiped region of size " << w.size << " was not zeroed";
    if (w.size >= 32) saw_buffer = true;
  }
  EXPECT_TRUE(saw_buffer);
}

TEST_F(SecretBytesTest, AdoptingConstructorWipesSource) {
  Bytes plaintext(16, 0x5C);
  SecretBytes s(std::move(plaintext));
  EXPECT_EQ(s.size(), 16u);
  // The moved-from/adopted source must hold no residue. (A moved-from
  // vector either transferred its buffer or was explicitly wiped.)
  for (const std::uint8_t b : plaintext) EXPECT_EQ(b, 0);  // NOLINT(bugprone-use-after-move)
}

TEST_F(SecretBytesTest, MoveTransfersWithoutCopy) {
  static_assert(!std::is_copy_constructible_v<SecretBytes>);
  static_assert(!std::is_copy_assignable_v<SecretBytes>);
  static_assert(std::is_nothrow_move_constructible_v<SecretBytes>);

  SecretBytes a = SecretBytes::from_view(Bytes(24, 0x01));
  SecretBytes b = std::move(a);
  EXPECT_EQ(b.size(), 24u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)

  // Move-assignment wipes the overwritten target's old buffer.
  SecretBytes c = SecretBytes::from_view(Bytes(40, 0x02));
  const std::size_t before = wipes_.size();
  c = std::move(b);
  EXPECT_EQ(c.size(), 24u);
  bool wiped_old_target = false;
  for (std::size_t i = before; i < wipes_.size(); ++i) {
    if (wipes_[i].size >= 40) wiped_old_target = true;
  }
  EXPECT_TRUE(wiped_old_target);
}

TEST_F(SecretBytesTest, StreamingRedacts) {
  const SecretBytes s = SecretBytes::from_view(Bytes(32, 0xEE));
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "[REDACTED:32]");
  EXPECT_EQ(os.str().find("ee"), std::string::npos);
}

TEST_F(SecretBytesTest, ConstantTimeEquality) {
  const SecretBytes a = SecretBytes::from_view(Bytes(32, 0x11));
  const SecretBytes b = SecretBytes::from_view(Bytes(32, 0x11));
  const SecretBytes c = SecretBytes::from_view(Bytes(32, 0x22));
  const SecretBytes shorter = SecretBytes::from_view(Bytes(16, 0x11));
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, shorter));
  EXPECT_TRUE(ct_equal(SecretBytes{}, SecretBytes{}));
}

TEST_F(SecretBytesTest, CloneIsDeliberateAndIndependent) {
  SecretBytes a = SecretBytes::from_view(Bytes(32, 0x33));
  const SecretBytes copy = a.clone();
  EXPECT_TRUE(ct_equal(a, copy));
  // Destroying the original leaves the clone intact.
  a = SecretBytes{};
  EXPECT_EQ(copy.size(), 32u);
}

TEST_F(SecretBytesTest, ExposeSecretReturnsView) {
  const Bytes raw = {1, 2, 3, 4};
  const SecretBytes s = SecretBytes::from_view(raw);
  // dblint:allow(expose): the unit under test IS the unwrap API
  const BytesView v = s.expose_secret();
  ASSERT_EQ(v.size(), raw.size());
  EXPECT_TRUE(std::equal(v.begin(), v.end(), raw.begin()));
}

}  // namespace
}  // namespace datablinder
