// Differential tests for the Montgomery fast paths: every accelerated
// route (CIOS kernel, Paillier CRT + randomizer pool, ElGamal/Sophos
// cached contexts, hoisted PRF key schedules) is pinned bit-for-bit
// against the reference implementation it replaced.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bigint/bigint.hpp"
#include "bigint/montgomery.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "crypto/prf.hpp"
#include "phe/elgamal.hpp"
#include "phe/paillier.hpp"
#include "sse/sophos.hpp"

namespace datablinder {
namespace {

using bigint::BigInt;
using bigint::Montgomery;

BigInt random_odd(std::size_t bits) {
  BigInt m = BigInt::random_bits(bits);
  if (m.is_even()) m += BigInt(1);
  return m;
}

// --- kernel vs generic ---------------------------------------------------------

TEST(MontgomeryDifferential, PowMatchesGenericAcrossBitLengths) {
  // Non-word-aligned lengths are deliberate: 65/127/129/193/257 exercise
  // the partial-limb handling in the CIOS loop and R^2 setup.
  for (const std::size_t bits : {8UL, 63UL, 64UL, 65UL, 127UL, 128UL, 129UL,
                                 193UL, 256UL, 257UL, 512UL, 521UL}) {
    const BigInt m = random_odd(bits);
    if (m == BigInt(1)) continue;
    const Montgomery ctx(m);
    for (int trial = 0; trial < 4; ++trial) {
      const BigInt base = BigInt::random_below(m);
      const BigInt exp = BigInt::random_below(m);
      EXPECT_EQ(base.pow_mod(exp, ctx), base.pow_mod_generic(exp, m))
          << bits << " bits, trial " << trial;
    }
  }
}

TEST(MontgomeryDifferential, MulMatchesGeneric) {
  for (const std::size_t bits : {65UL, 128UL, 255UL, 512UL}) {
    const BigInt m = random_odd(bits);
    const Montgomery ctx(m);
    for (int trial = 0; trial < 8; ++trial) {
      const BigInt a = BigInt::random_below(m);
      const BigInt b = BigInt::random_below(m);
      EXPECT_EQ(a.mul_mod(b, ctx), a.mul_mod(b, m)) << bits << " bits";
    }
  }
}

TEST(MontgomeryDifferential, AutoDispatchMatchesGenericForOddModuli) {
  for (int trial = 0; trial < 8; ++trial) {
    const BigInt m = random_odd(192);
    const BigInt base = BigInt::random_below(m);
    const BigInt exp = BigInt::random_below(m);
    EXPECT_EQ(base.pow_mod(exp, m), base.pow_mod_generic(exp, m));
  }
}

TEST(MontgomeryDifferential, EvenModulusFallsBackToGeneric) {
  const BigInt m = BigInt::from_hex("10000000000000000000000000000000000");
  const BigInt base = BigInt::random_below(m);
  const BigInt exp = BigInt(65537);
  EXPECT_EQ(base.pow_mod(exp, m), base.pow_mod_generic(exp, m));
}

TEST(MontgomeryDifferential, ContextEdgeCases) {
  const BigInt m = random_odd(256);
  const Montgomery ctx(m);
  const BigInt a = BigInt::random_below(m);
  EXPECT_EQ(BigInt(0).pow_mod(BigInt(5), ctx), BigInt(0));
  EXPECT_EQ(a.pow_mod(BigInt(0), ctx), BigInt(1));
  EXPECT_EQ(a.pow_mod(BigInt(1), ctx), a);
  // Out-of-range operands are reduced on entry.
  EXPECT_EQ((a + m).mul_mod(a, ctx), a.mul_mod(a, m));
  EXPECT_EQ((a + m + m).pow_mod(BigInt(3), ctx), a.pow_mod_generic(BigInt(3), m));
}

TEST(MontgomeryDifferential, RejectsBadModuli) {
  EXPECT_THROW(Montgomery(BigInt(4)), Error);
  EXPECT_THROW(Montgomery(BigInt(1)), Error);
  EXPECT_THROW(Montgomery(BigInt(0)), Error);
}

// --- Paillier ------------------------------------------------------------------

class PaillierSizeDifferential : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PaillierSizeDifferential, RoundTripAndCrtAgreement) {
  const phe::PaillierKeyPair kp = phe::paillier_generate(GetParam());
  DetRng rng(GetParam());
  for (int i = 0; i < 8; ++i) {
    const std::int64_t m = rng.range(-1000000, 1000000);
    const BigInt ct = kp.pub.encrypt_i64(m);
    // CRT decryption (fast path) against the lambda/mu reference.
    EXPECT_EQ(kp.priv.decrypt(ct), kp.priv.decrypt_generic(ct)) << m;
    EXPECT_EQ(kp.priv.decrypt_i64(ct), m);
  }
}

INSTANTIATE_TEST_SUITE_P(ModulusSizes, PaillierSizeDifferential,
                         ::testing::Values(256, 512, 1024));

TEST(PaillierDifferential, FastAndSlowKeysInteroperate) {
  // A hand-built key (no init_fast_paths, no p/q) must produce ciphertexts
  // the accelerated key decrypts, and vice versa.
  const phe::PaillierKeyPair fast = phe::paillier_generate(256);
  phe::PaillierKeyPair slow;
  slow.pub.n = fast.pub.n;
  slow.pub.n_squared = fast.pub.n_squared;
  slow.priv.lambda = fast.priv.lambda;
  slow.priv.mu = fast.priv.mu;
  slow.priv.pub = slow.pub;
  for (const std::int64_t m : {-777LL, 0LL, 31337LL}) {
    EXPECT_EQ(fast.priv.decrypt_i64(slow.pub.encrypt_i64(m)), m);
    EXPECT_EQ(slow.priv.decrypt_i64(fast.pub.encrypt_i64(m)), m);
  }
}

TEST(PaillierDifferential, RandomizerPoolPreservesCorrectness) {
  phe::PaillierKeyPair kp = phe::paillier_generate(256);
  kp.pub.init_fast_paths(/*pool_low_water=*/4);
  ASSERT_NE(kp.pub.pool, nullptr);
  EXPECT_GE(kp.pub.pool->size(), 4u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(kp.priv.decrypt_i64(kp.pub.encrypt_i64(i * 17 - 50)), i * 17 - 50);
  }
  EXPECT_GT(kp.pub.pool->hits(), 0u);
  // Two pooled encryptions of one plaintext still differ (fresh factors).
  EXPECT_NE(kp.pub.encrypt_i64(9), kp.pub.encrypt_i64(9));
}

// --- ElGamal -------------------------------------------------------------------

class ElGamalSizeDifferential : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ElGamalSizeDifferential, FastPathMatchesFallback) {
  const phe::ElGamalKeyPair kp = phe::elgamal_generate(GetParam());
  ASSERT_NE(kp.pub.mont_p, nullptr);
  // Strip the cached context to drive the transient-modulus fallback.
  phe::ElGamalKeyPair plain = kp;
  plain.pub.mont_p = nullptr;
  plain.priv.pub.mont_p = nullptr;

  const BigInt m = BigInt(2).pow_mod(BigInt(16), kp.pub.p);
  // Cross-decryption: fast-encrypted ciphertexts decrypt on the fallback
  // key and the other way around.
  EXPECT_EQ(plain.priv.decrypt(kp.pub.encrypt(m)), m);
  EXPECT_EQ(kp.priv.decrypt(plain.pub.encrypt(m)), m);

  const auto c1 = kp.pub.encrypt_exponent(21);
  const auto c2 = plain.pub.encrypt_exponent(13);
  EXPECT_EQ(kp.priv.decrypt_exponent(kp.pub.multiply(c1, c2), 100), 34u);
  EXPECT_EQ(plain.priv.decrypt_exponent(plain.pub.multiply(c1, c2), 100), 34u);
  EXPECT_EQ(kp.priv.decrypt(kp.pub.rerandomize(plain.pub.encrypt(m))), m);
}

INSTANTIATE_TEST_SUITE_P(PrimeSizes, ElGamalSizeDifferential,
                         ::testing::Values(256, 512));

// --- Sophos --------------------------------------------------------------------

TEST(SophosDifferential, ContextAndFallbackSearchAgree) {
  const Bytes key(32, 0x42);
  sse::SophosClient client(key, 512);
  sse::SophosPublicParams params = client.public_params();
  ASSERT_NE(params.mont_n, nullptr);
  sse::SophosServer fast_server(params);
  params.mont_n = nullptr;  // schoolbook pow_mod path
  sse::SophosServer slow_server(params);

  for (int i = 0; i < 6; ++i) {
    const auto token = client.update("kw", "doc-" + std::to_string(i));
    fast_server.apply_update(token);
    slow_server.apply_update(token);
  }
  const auto st = client.search_token("kw");
  ASSERT_TRUE(st.has_value());
  const auto fast_ids = fast_server.search(*st);
  const auto slow_ids = slow_server.search(*st);
  EXPECT_EQ(fast_ids, slow_ids);
  ASSERT_EQ(fast_ids.size(), 6u);
  EXPECT_EQ(fast_ids.front(), "doc-5");  // newest first
}

// --- PrfKey --------------------------------------------------------------------

TEST(PrfKeyDifferential, MatchesFreeFunctions) {
  for (const std::size_t key_len : {1UL, 16UL, 32UL, 64UL, 65UL, 200UL}) {
    const Bytes key = SecureRng::bytes(key_len);
    const crypto::PrfKey pk(key);
    for (const std::size_t msg_len : {0UL, 1UL, 55UL, 64UL, 100UL}) {
      const Bytes msg = SecureRng::bytes(msg_len);
      EXPECT_EQ(pk.prf(msg), crypto::prf(key, msg)) << key_len << "/" << msg_len;
      EXPECT_EQ(pk.prf_labeled("label", msg), crypto::prf_labeled(key, "label", msg));
      EXPECT_EQ(pk.prf_n(msg, 16), crypto::prf_n(key, msg, 16));
      EXPECT_EQ(pk.prf_n(msg, 32), crypto::prf_n(key, msg, 32));
      EXPECT_EQ(pk.prf_n(msg, 100), crypto::prf_n(key, msg, 100));
      EXPECT_EQ(pk.prf_u64(msg), crypto::prf_u64(key, msg));
      EXPECT_EQ(pk.prf_mod(msg, 97), crypto::prf_mod(key, msg, 97));
    }
  }
}

TEST(PrfKeyDifferential, CopiesAreIndependent) {
  const Bytes key = SecureRng::bytes(32);
  const crypto::PrfKey original(key);
  const crypto::PrfKey copy = original;
  const Bytes msg = SecureRng::bytes(40);
  EXPECT_EQ(copy.prf(msg), original.prf(msg));
  EXPECT_EQ(copy.prf(msg), crypto::prf(key, msg));
}

}  // namespace
}  // namespace datablinder
