// Schema and annotation model tests (§3.2 data access model).
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "fhir/observation.hpp"
#include "schema/schema.hpp"

namespace datablinder::schema {
namespace {

using doc::Document;
using doc::Value;

Schema tiny_schema() {
  Schema s("tiny");
  FieldAnnotation name;
  name.type = FieldType::kString;
  name.sensitive = true;
  name.required = true;
  name.protection = ProtectionClass::kClass2;
  name.operations = {Operation::kInsert, Operation::kEquality};
  s.field("name", name);
  s.plain_field("note", FieldType::kString);
  return s;
}

TEST(SchemaTest, ValidationAcceptsConformingDocument) {
  Document d;
  d.id = "1";
  d.set("name", Value("alice"));
  d.set("note", Value("ok"));
  EXPECT_NO_THROW(tiny_schema().validate(d));
}

TEST(SchemaTest, MissingRequiredFieldRejected) {
  Document d;
  d.set("note", Value("no name"));
  EXPECT_THROW(tiny_schema().validate(d), Error);
}

TEST(SchemaTest, UnknownFieldRejected) {
  Document d;
  d.set("name", Value("a"));
  d.set("surprise", Value("x"));
  EXPECT_THROW(tiny_schema().validate(d), Error);
}

TEST(SchemaTest, TypeMismatchRejected) {
  Document d;
  d.set("name", Value(std::int64_t{5}));
  EXPECT_THROW(tiny_schema().validate(d), Error);
}

TEST(SchemaTest, IntAcceptedWhereDoubleDeclared) {
  Schema s("nums");
  s.plain_field("v", FieldType::kDouble);
  Document d;
  d.set("v", Value(std::int64_t{7}));
  EXPECT_NO_THROW(s.validate(d));
}

TEST(SchemaTest, DuplicateFieldRejected) {
  Schema s("dup");
  s.plain_field("a", FieldType::kAny);
  EXPECT_THROW(s.plain_field("a", FieldType::kAny), Error);
}

TEST(SchemaTest, AnnotationLookup) {
  const Schema s = tiny_schema();
  EXPECT_TRUE(s.annotation("name").sensitive);
  EXPECT_TRUE(s.annotation("name").needs(Operation::kEquality));
  EXPECT_FALSE(s.annotation("name").needs(Operation::kRange));
  EXPECT_THROW(s.annotation("missing"), Error);
}

TEST(SchemaTest, TypeMatching) {
  EXPECT_TRUE(type_matches(FieldType::kAny, Value(Bytes{1})));
  EXPECT_TRUE(type_matches(FieldType::kString, Value("x")));
  EXPECT_FALSE(type_matches(FieldType::kString, Value(std::int64_t{1})));
  EXPECT_TRUE(type_matches(FieldType::kInt, Value(std::int64_t{1})));
  EXPECT_FALSE(type_matches(FieldType::kInt, Value(1.5)));
  EXPECT_TRUE(type_matches(FieldType::kDouble, Value(std::int64_t{1})));
  EXPECT_TRUE(type_matches(FieldType::kBool, Value(false)));
}

TEST(SchemaTest, ToStringHelpers) {
  EXPECT_EQ(to_string(ProtectionClass::kClass1), "C1(structure)");
  EXPECT_EQ(to_string(ProtectionClass::kClass5), "C5(order)");
  EXPECT_EQ(to_string(Operation::kBoolean), "BL");
  EXPECT_EQ(to_string(Aggregate::kAverage), "avg");
  EXPECT_EQ(to_string(FieldType::kDouble), "double");
}

TEST(FhirSchemaTest, ObservationSchemaMatchesPaperAnnotations) {
  const Schema s = fhir::observation_schema();
  EXPECT_EQ(s.annotation("status").protection, ProtectionClass::kClass3);
  EXPECT_TRUE(s.annotation("status").needs(Operation::kBoolean));
  EXPECT_EQ(s.annotation("subject").protection, ProtectionClass::kClass2);
  EXPECT_EQ(s.annotation("effective").protection, ProtectionClass::kClass5);
  EXPECT_TRUE(s.annotation("effective").needs(Operation::kRange));
  EXPECT_EQ(s.annotation("performer").protection, ProtectionClass::kClass1);
  EXPECT_FALSE(s.annotation("performer").needs(Operation::kEquality));
  EXPECT_TRUE(s.annotation("value").needs(Aggregate::kAverage));
  EXPECT_FALSE(s.annotation("identifier").sensitive);
}

TEST(FhirGeneratorTest, GeneratesValidObservations) {
  fhir::ObservationGenerator gen(1);
  const Schema s = fhir::observation_schema();
  for (int i = 0; i < 100; ++i) {
    EXPECT_NO_THROW(s.validate(gen.next()));
  }
}

TEST(FhirGeneratorTest, DeterministicForSameSeed) {
  fhir::ObservationGenerator a(5), b(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace datablinder::schema
