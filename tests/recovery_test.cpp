// Durability and recovery tests: the gateway's semi-persistent local store
// (Mitra counters, Paillier keys) survives restarts via the KvStore AOF,
// torn AOF tails are tolerated, and a fully rebooted trusted zone resumes
// service over the cloud-resident ciphertexts.
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "fhir/observation.hpp"

namespace datablinder {
namespace {

using core::DocId;
using doc::Document;
using doc::Value;

struct TempAof {
  explicit TempAof(const char* name) : path(std::string("/tmp/datablinder_") + name) {
    std::remove(path.c_str());
  }
  ~TempAof() { std::remove(path.c_str()); }
  std::string path;
};

core::TacticRegistry& registry() {
  static core::TacticRegistry r = [] {
    core::TacticRegistry reg;
    core::register_builtin_tactics(reg);
    return reg;
  }();
  return r;
}

TEST(RecoveryTest, GatewayRestartWithPersistedLocalStore) {
  TempAof aof("recovery1.aof");
  core::CloudNode cloud;  // the cloud outlives gateway incarnations
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  const Bytes master(32, 5);

  // Incarnation 1: insert documents through Mitra+DET+Paillier tactics.
  {
    kms::KeyManager kms(master);
    store::KvStore local(aof.path);  // semi-persistent gateway store
    core::Gateway gw(rpc, kms, local, registry(),
                     core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
    gw.register_schema(fhir::benchmark_schema("obs"));
    fhir::ObservationGenerator gen(9);
    for (int i = 0; i < 10; ++i) {
      Document d = gen.next();
      d.set("subject", Value("patient-x"));
      gw.insert("obs", d);
    }
    EXPECT_EQ(gw.equality_search("obs", "subject", Value("patient-x")).size(), 10u);
  }

  // Incarnation 2: same master key, REPLAYED local store.
  kms::KeyManager kms(master);
  store::KvStore local(aof.path);
  core::Gateway gw(rpc, kms, local, registry(),
                   core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gw.register_schema(fhir::benchmark_schema("obs"));

  // Mitra counters recovered: search works.
  EXPECT_EQ(gw.equality_search("obs", "subject", Value("patient-x")).size(), 10u);
  // Paillier keypair recovered (not regenerated): old ciphertexts decrypt.
  const auto avg = gw.aggregate("obs", "value", schema::Aggregate::kAverage);
  EXPECT_EQ(avg.count, 10u);
  EXPECT_GT(avg.value, 0.0);

  // And new writes continue the recovered counter chain seamlessly.
  fhir::ObservationGenerator gen(10);
  Document d = gen.next();
  d.set("subject", Value("patient-x"));
  gw.insert("obs", d);
  EXPECT_EQ(gw.equality_search("obs", "subject", Value("patient-x")).size(), 11u);
}

TEST(RecoveryTest, TornAofTailIsTolerated) {
  TempAof aof("recovery2.aof");
  {
    store::KvStore kv(aof.path);
    kv.set("intact", Bytes{1, 2, 3});
    kv.sadd("s", "member");
  }
  // Simulate a crash mid-write: truncate the last few bytes of the log.
  {
    std::FILE* f = std::fopen(aof.path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_GT(size, 4);
    ASSERT_EQ(truncate(aof.path.c_str(), size - 3), 0);
    std::fclose(f);
  }
  // Reopen: the torn record (the sadd) may be lost, but the store must
  // come up with every complete record intact.
  store::KvStore kv(aof.path);
  EXPECT_EQ(kv.get("intact"), (Bytes{1, 2, 3}));
}

TEST(RecoveryTest, PaillierKeysAreStableAcrossRestarts) {
  TempAof aof("recovery3.aof");
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  const Bytes master(32, 6);

  schema::Schema s("ledger");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kDouble;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass1;
  f.operations = {schema::Operation::kInsert};
  f.aggregates = {schema::Aggregate::kSum};
  s.field("amount", f);

  {
    kms::KeyManager kms(master);
    store::KvStore local(aof.path);
    core::Gateway gw(rpc, kms, local, registry(),
                     core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
    gw.register_schema(s);
    for (double amount : {10.0, 20.0, 30.0}) {
      Document d;
      d.set("amount", Value(amount));
      gw.insert("ledger", d);
    }
  }

  kms::KeyManager kms(master);
  store::KvStore local(aof.path);
  core::Gateway gw(rpc, kms, local, registry(),
                   core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gw.register_schema(s);
  // Summing pre-restart ciphertexts requires the SAME private key: if the
  // tactic had regenerated instead of recovering, decryption would yield
  // garbage or throw.
  EXPECT_NEAR(gw.aggregate("ledger", "amount", schema::Aggregate::kSum).value, 60.0,
              0.01);
  // And post-restart inserts fold into the same homomorphic column.
  Document d;
  d.set("amount", Value(40.0));
  gw.insert("ledger", d);
  EXPECT_NEAR(gw.aggregate("ledger", "amount", schema::Aggregate::kSum).value, 100.0,
              0.01);
}

TEST(RecoveryTest, WithoutPersistenceMitraSearchDegradesLoudlyNot) {
  // Documented behaviour check (mirrors stateless_test's contrast case):
  // an in-memory local store means Mitra counters vanish on restart — the
  // middleware returns empty results (no crash, no garbage).
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  const Bytes master(32, 7);
  {
    kms::KeyManager kms(master);
    store::KvStore local;  // volatile
    core::Gateway gw(rpc, kms, local, registry(),
                     core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
    gw.register_schema(fhir::benchmark_schema("obs"));
    fhir::ObservationGenerator gen(11);
    Document d = gen.next();
    d.set("subject", Value("ghost"));
    gw.insert("obs", d);
  }
  kms::KeyManager kms(master);
  store::KvStore local;
  core::Gateway gw(rpc, kms, local, registry(),
                   core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gw.register_schema(fhir::benchmark_schema("obs"));
  EXPECT_TRUE(gw.equality_search("obs", "subject", Value("ghost")).empty());
}

}  // namespace
}  // namespace datablinder
