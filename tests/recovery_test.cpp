// Durability and recovery tests: the gateway's semi-persistent local store
// (Mitra counters, Paillier keys) survives restarts via the KvStore AOF,
// torn AOF tails are tolerated, and a fully rebooted trusted zone resumes
// service over the cloud-resident ciphertexts.
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/replication.hpp"
#include "core/tactics/builtin.hpp"
#include "fhir/observation.hpp"

namespace datablinder {
namespace {

using core::DocId;
using doc::Document;
using doc::Value;

struct TempAof {
  explicit TempAof(const char* name) : path(std::string("/tmp/datablinder_") + name) {
    std::remove(path.c_str());
  }
  ~TempAof() { std::remove(path.c_str()); }
  std::string path;
};

core::TacticRegistry& registry() {
  static core::TacticRegistry r = [] {
    core::TacticRegistry reg;
    core::register_builtin_tactics(reg);
    return reg;
  }();
  return r;
}

TEST(RecoveryTest, GatewayRestartWithPersistedLocalStore) {
  TempAof aof("recovery1.aof");
  core::CloudNode cloud;  // the cloud outlives gateway incarnations
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  const Bytes master(32, 5);

  // Incarnation 1: insert documents through Mitra+DET+Paillier tactics.
  {
    kms::KeyManager kms(master);
    store::KvStore local(aof.path);  // semi-persistent gateway store
    core::Gateway gw(rpc, kms, local, registry(),
                     core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
    gw.register_schema(fhir::benchmark_schema("obs"));
    fhir::ObservationGenerator gen(9);
    for (int i = 0; i < 10; ++i) {
      Document d = gen.next();
      d.set("subject", Value("patient-x"));
      gw.insert("obs", d);
    }
    EXPECT_EQ(gw.equality_search("obs", "subject", Value("patient-x")).size(), 10u);
  }

  // Incarnation 2: same master key, REPLAYED local store.
  kms::KeyManager kms(master);
  store::KvStore local(aof.path);
  core::Gateway gw(rpc, kms, local, registry(),
                   core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gw.register_schema(fhir::benchmark_schema("obs"));

  // Mitra counters recovered: search works.
  EXPECT_EQ(gw.equality_search("obs", "subject", Value("patient-x")).size(), 10u);
  // Paillier keypair recovered (not regenerated): old ciphertexts decrypt.
  const auto avg = gw.aggregate("obs", "value", schema::Aggregate::kAverage);
  EXPECT_EQ(avg.count, 10u);
  EXPECT_GT(avg.value, 0.0);

  // And new writes continue the recovered counter chain seamlessly.
  fhir::ObservationGenerator gen(10);
  Document d = gen.next();
  d.set("subject", Value("patient-x"));
  gw.insert("obs", d);
  EXPECT_EQ(gw.equality_search("obs", "subject", Value("patient-x")).size(), 11u);
}

TEST(RecoveryTest, TornAofTailIsTolerated) {
  TempAof aof("recovery2.aof");
  {
    store::KvStore kv(aof.path);
    kv.set("intact", Bytes{1, 2, 3});
    kv.sadd("s", "member");
  }
  // Simulate a crash mid-write: truncate the last few bytes of the log.
  {
    std::FILE* f = std::fopen(aof.path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_GT(size, 4);
    ASSERT_EQ(truncate(aof.path.c_str(), size - 3), 0);
    std::fclose(f);
  }
  // Reopen: the torn record (the sadd) may be lost, but the store must
  // come up with every complete record intact.
  store::KvStore kv(aof.path);
  EXPECT_EQ(kv.get("intact"), (Bytes{1, 2, 3}));
}

TEST(RecoveryTest, PaillierKeysAreStableAcrossRestarts) {
  TempAof aof("recovery3.aof");
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  const Bytes master(32, 6);

  schema::Schema s("ledger");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kDouble;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass1;
  f.operations = {schema::Operation::kInsert};
  f.aggregates = {schema::Aggregate::kSum};
  s.field("amount", f);

  {
    kms::KeyManager kms(master);
    store::KvStore local(aof.path);
    core::Gateway gw(rpc, kms, local, registry(),
                     core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
    gw.register_schema(s);
    for (double amount : {10.0, 20.0, 30.0}) {
      Document d;
      d.set("amount", Value(amount));
      gw.insert("ledger", d);
    }
  }

  kms::KeyManager kms(master);
  store::KvStore local(aof.path);
  core::Gateway gw(rpc, kms, local, registry(),
                   core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gw.register_schema(s);
  // Summing pre-restart ciphertexts requires the SAME private key: if the
  // tactic had regenerated instead of recovering, decryption would yield
  // garbage or throw.
  EXPECT_NEAR(gw.aggregate("ledger", "amount", schema::Aggregate::kSum).value, 60.0,
              0.01);
  // And post-restart inserts fold into the same homomorphic column.
  Document d;
  d.set("amount", Value(40.0));
  gw.insert("ledger", d);
  EXPECT_NEAR(gw.aggregate("ledger", "amount", schema::Aggregate::kSum).value, 100.0,
              0.01);
}

TEST(RecoveryTest, MidInsertKillThenRetryConvergesExactlyOnce) {
  // Crash-consistent inserts: a scripted fault kills the channel mid-insert
  // (after the intent is journaled, while the mutation batch is in flight).
  // Retrying the insert with the same id must resume the ORIGINAL attempt by
  // replaying its recorded ciphertexts byte-identically — exactly-once
  // visible state, no duplicate index entries.
  TempAof aof("recovery4.aof");
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms(Bytes(32, 8));
  store::KvStore local(aof.path);

  core::GatewayConfig cfg;
  cfg.tactic_params = {{"paillier_modulus_bits", "256"}};
  cfg.journal_inserts = true;
  core::Gateway gw(rpc, kms, local, registry(), cfg);
  gw.register_schema(fhir::benchmark_schema("obs"));

  fhir::ObservationGenerator gen(12);
  Document d = gen.next();
  d.id = "doc-killed-midway";
  d.set("subject", Value("patient-k"));

  // Kill the batch that carries doc.put + every index-stage update.
  net::FaultPlan plan;
  plan.method_faults = {{"rpc.batch", /*skip=*/0, /*count=*/1}};
  channel.set_fault_plan(plan);
  try {
    gw.insert("obs", d);
    FAIL() << "expected mid-insert channel kill";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnavailable);
  }

  // The intent is durably pending; nothing reached the cloud.
  ASSERT_NE(gw.journal(), nullptr);
  ASSERT_EQ(gw.journal()->pending_count(), 1u);
  const auto intent = gw.journal()->find("obs", "doc-killed-midway");
  ASSERT_TRUE(intent.has_value());
  EXPECT_GE(intent->rpcs.size(), 2u);  // doc.put + index updates

  // Compute the exact wire size the recorded batch must occupy when
  // replayed: byte-identical replay is observable through the channel's
  // byte accounting.
  Bytes batch_payload = be32(static_cast<std::uint32_t>(intent->rpcs.size()));
  for (const auto& r : intent->rpcs) {
    const Bytes sub = r.serialize();
    append(batch_payload, be32(static_cast<std::uint32_t>(sub.size())));
    append(batch_payload, sub);
  }
  net::Request envelope;
  envelope.method = "rpc.batch";
  envelope.payload = batch_payload;
  const std::uint64_t expected_batch_bytes = envelope.serialize().size();

  // Retry with the same document: the gateway resumes the pending intent
  // instead of re-encrypting.
  const std::uint64_t sent_before = channel.stats().bytes_sent.load();
  EXPECT_EQ(gw.insert("obs", d), "doc-killed-midway");
  EXPECT_EQ(channel.stats().bytes_sent.load() - sent_before, expected_batch_bytes);
  EXPECT_EQ(gw.journal()->pending_count(), 0u);
  EXPECT_EQ(gw.perf().counter("core.journal.resume"), 1u);

  // Exactly-once convergence: one document, one index entry, decryptable.
  EXPECT_EQ(gw.equality_search("obs", "subject", Value("patient-k")).size(), 1u);
  EXPECT_EQ(gw.read("obs", "doc-killed-midway").id, "doc-killed-midway");

  // The Paillier column also saw the value exactly once.
  EXPECT_EQ(gw.aggregate("obs", "value", schema::Aggregate::kAverage).count, 1u);
}

TEST(RecoveryTest, RestartedGatewayResumesPendingInsertIntent) {
  // Gateway crash between journaling an intent and shipping the batch: the
  // restarted incarnation finds the intent in the replayed AOF and
  // completes it via recover_pending_inserts().
  TempAof aof("recovery5.aof");
  core::CloudNode cloud;  // cloud state outlives gateway incarnations
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  const Bytes master(32, 9);

  core::GatewayConfig cfg;
  cfg.tactic_params = {{"paillier_modulus_bits", "256"}};
  cfg.journal_inserts = true;

  // Incarnation 1: one insert lands, the next dies mid-batch ("crash").
  {
    kms::KeyManager kms(master);
    store::KvStore local(aof.path);
    core::Gateway gw(rpc, kms, local, registry(), cfg);
    gw.register_schema(fhir::benchmark_schema("obs"));

    fhir::ObservationGenerator gen(13);
    Document ok = gen.next();
    ok.id = "doc-landed";
    ok.set("subject", Value("patient-r"));
    gw.insert("obs", ok);

    Document doomed = gen.next();
    doomed.id = "doc-interrupted";
    doomed.set("subject", Value("patient-r"));
    net::FaultPlan plan;
    plan.method_faults = {{"rpc.batch", /*skip=*/0, /*count=*/1}};
    channel.set_fault_plan(plan);
    EXPECT_THROW(gw.insert("obs", doomed), Error);
    channel.clear_fault_plan();
    EXPECT_EQ(gw.journal()->pending_count(), 1u);
  }  // crash: gateway and local store torn down with the intent pending

  // Incarnation 2: same master key, replayed AOF.
  kms::KeyManager kms(master);
  store::KvStore local(aof.path);
  core::Gateway gw(rpc, kms, local, registry(), cfg);
  gw.register_schema(fhir::benchmark_schema("obs"));

  ASSERT_EQ(gw.journal()->pending_count(), 1u);
  EXPECT_EQ(gw.recover_pending_inserts(), 1u);
  EXPECT_EQ(gw.journal()->pending_count(), 0u);

  // Both documents visible exactly once; the recovered one decrypts, and
  // the homomorphic aggregate covers both.
  EXPECT_EQ(gw.equality_search("obs", "subject", Value("patient-r")).size(), 2u);
  EXPECT_EQ(gw.read("obs", "doc-interrupted").id, "doc-interrupted");
  EXPECT_EQ(gw.aggregate("obs", "value", schema::Aggregate::kAverage).count, 2u);
}

TEST(RecoveryTest, PendingIntentReplaysToEveryReplicaExactlyOnce) {
  // Intent-journal kill/restart against a THREE-replica cloud: the whole
  // replica set becomes unreachable mid-insert (after the intent is
  // journaled, before the batch ships). The restarted incarnation resumes
  // the intent through the replica group, and the recorded batch reaches
  // every replica exactly once — byte-exact per channel, digests equal.
  TempAof aof("recovery6.aof");
  const Bytes master(32, 10);

  core::GatewayConfig cfg;
  cfg.tactic_params = {{"paillier_modulus_bits", "256"}};
  cfg.journal_inserts = true;
  cfg.retry = net::RetryPolicy::standard();
  cfg.retry.jitter_seed = 7;
  cfg.replicas = 3;
  core::ReplicatedCloud rc(cfg);  // the replica set outlives gateway incarnations

  // Incarnation 1: the batch dies on every replica's request leg — retries
  // and failover exhaust without a single byte of it shipping anywhere.
  {
    kms::KeyManager kms(master);
    store::KvStore local(aof.path);
    core::Gateway gw(rc.client(), kms, local, registry(), cfg);
    gw.register_schema(fhir::benchmark_schema("obs"));

    fhir::ObservationGenerator gen(14);
    Document d = gen.next();
    d.id = "doc-cluster-interrupted";
    d.set("subject", Value("patient-z"));

    net::FaultPlan plan;
    plan.method_faults = {{"rpc.batch", /*skip=*/0, /*count=*/100}};
    for (std::size_t i = 0; i < rc.size(); ++i) rc.channel(i).set_fault_plan(plan);
    EXPECT_THROW(gw.insert("obs", d), Error);
    for (std::size_t i = 0; i < rc.size(); ++i) rc.channel(i).clear_fault_plan();
    ASSERT_NE(gw.journal(), nullptr);
    EXPECT_EQ(gw.journal()->pending_count(), 1u);
  }  // crash: gateway torn down with the intent pending

  // Incarnation 2: same master key, replayed AOF, same (healed) replica
  // set. The schema setup writes re-elect a primary and pull every replica
  // back in sync before recovery runs.
  kms::KeyManager kms(master);
  store::KvStore local(aof.path);
  core::Gateway gw(rc.client(), kms, local, registry(), cfg);
  gw.register_schema(fhir::benchmark_schema("obs"));

  ASSERT_EQ(gw.journal()->pending_count(), 1u);
  const auto intent = gw.journal()->find("obs", "doc-cluster-interrupted");
  ASSERT_TRUE(intent.has_value());

  // The exact wire size the recorded batch occupies when replayed — the
  // same envelope encoding flush_deferred() uses.
  Bytes batch_payload = be32(static_cast<std::uint32_t>(intent->rpcs.size()));
  for (const auto& r : intent->rpcs) {
    const Bytes sub = r.serialize();
    append(batch_payload, be32(static_cast<std::uint32_t>(sub.size())));
    append(batch_payload, sub);
  }
  net::Request envelope;
  envelope.method = "rpc.batch";
  envelope.payload = batch_payload;
  const std::uint64_t expected_batch_bytes = envelope.serialize().size();

  ASSERT_NE(rc.group(), nullptr);
  for (std::size_t i = 0; i < rc.size(); ++i) {
    ASSERT_EQ(rc.group()->applied_seq(i), rc.group()->applied_seq(0))
        << "replica " << i << " not in sync before recovery";
  }
  std::vector<std::uint64_t> sent_before;
  for (std::size_t i = 0; i < rc.size(); ++i) {
    sent_before.push_back(rc.channel(i).stats().bytes_sent.load());
  }

  EXPECT_EQ(gw.recover_pending_inserts(), 1u);
  EXPECT_EQ(gw.journal()->pending_count(), 0u);

  // Exactly once, on every replica: each channel carried precisely one copy
  // of the recorded batch, and the replica states are identical.
  for (std::size_t i = 0; i < rc.size(); ++i) {
    EXPECT_EQ(rc.channel(i).stats().bytes_sent.load() - sent_before[i],
              expected_batch_bytes)
        << "replica " << i << " saw the replayed batch more or less than once";
  }
  for (std::size_t i = 1; i < rc.size(); ++i) {
    EXPECT_EQ(rc.node(i).state_digest(), rc.node(0).state_digest());
  }
  EXPECT_EQ(gw.equality_search("obs", "subject", Value("patient-z")).size(), 1u);
  EXPECT_EQ(gw.read("obs", "doc-cluster-interrupted").id, "doc-cluster-interrupted");
  EXPECT_EQ(gw.aggregate("obs", "value", schema::Aggregate::kAverage).count, 1u);
}

TEST(RecoveryTest, WithoutPersistenceMitraSearchDegradesLoudlyNot) {
  // Documented behaviour check (mirrors stateless_test's contrast case):
  // an in-memory local store means Mitra counters vanish on restart — the
  // middleware returns empty results (no crash, no garbage).
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  const Bytes master(32, 7);
  {
    kms::KeyManager kms(master);
    store::KvStore local;  // volatile
    core::Gateway gw(rpc, kms, local, registry(),
                     core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
    gw.register_schema(fhir::benchmark_schema("obs"));
    fhir::ObservationGenerator gen(11);
    Document d = gen.next();
    d.set("subject", Value("ghost"));
    gw.insert("obs", d);
  }
  kms::KeyManager kms(master);
  store::KvStore local;
  core::Gateway gw(rpc, kms, local, registry(),
                   core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gw.register_schema(fhir::benchmark_schema("obs"));
  EXPECT_TRUE(gw.equality_search("obs", "subject", Value("ghost")).empty());
}

}  // namespace
}  // namespace datablinder
