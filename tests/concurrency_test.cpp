// Concurrency tests: the gateway serves parallel users without corrupting
// tactic state or indexes; the cloud node handles concurrent RPC dispatch;
// stores behave under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/tactics/builtin.hpp"
#include "fhir/observation.hpp"
#include "store/kvstore.hpp"

namespace datablinder {
namespace {

using core::DocId;
using doc::Document;
using doc::Value;

TEST(ConcurrencyTest, KvStoreParallelMixedOps) {
  store::KvStore kv;
  constexpr int kThreads = 8;
  constexpr int kOps = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&kv, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "k" + std::to_string(i % 17);
        kv.set(key, Bytes{static_cast<std::uint8_t>(t)});
        kv.sadd("set", std::to_string(t * kOps + i));
        kv.incr("counter");
        kv.zadd("z", Bytes{static_cast<std::uint8_t>(i % 251)}, std::to_string(i));
        kv.get(key);
        kv.zrange("z", Bytes{0}, Bytes{255});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(kv.incr("counter", 0), kThreads * kOps);
  EXPECT_EQ(kv.scard("set"), static_cast<std::size_t>(kThreads * kOps));
}

TEST(ConcurrencyTest, CollectionParallelPutFind) {
  store::Collection col("c");
  col.create_index("v");
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&col, t] {
      for (int i = 0; i < 200; ++i) {
        Document d;
        d.id = std::to_string(t) + "-" + std::to_string(i);
        d.set("v", Value(std::int64_t{i % 13}));
        col.put(std::move(d));
        col.find(store::Filter::eq("v", Value(std::int64_t{i % 13})));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(col.size(), 6u * 200u);
  // Index consistency: each value class has exactly the expected members.
  std::size_t total = 0;
  for (std::int64_t v = 0; v < 13; ++v) {
    total += col.find(store::Filter::eq("v", Value(v))).size();
  }
  EXPECT_EQ(total, 6u * 200u);
}

TEST(ConcurrencyTest, GatewayParallelUsersStayConsistent) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gateway(rpc, kms, local, registry,
                        core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gateway.register_schema(fhir::benchmark_schema("obs"));

  constexpr int kUsers = 6;
  constexpr int kDocsPerUser = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> users;
  for (int u = 0; u < kUsers; ++u) {
    users.emplace_back([&, u] {
      try {
        fhir::ObservationGenerator gen(1000 + u);
        for (int i = 0; i < kDocsPerUser; ++i) {
          Document d = gen.next();
          d.set("subject", Value("user" + std::to_string(u)));
          gateway.insert("obs", d);
          // Interleave reads with writes.
          gateway.equality_search("obs", "subject",
                                  Value("user" + std::to_string(u)));
          if (i % 5 == 0) {
            gateway.aggregate("obs", "value", schema::Aggregate::kAverage);
          }
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : users) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Post-conditions: every user's documents are all present and searchable.
  for (int u = 0; u < kUsers; ++u) {
    EXPECT_EQ(gateway
                  .equality_search("obs", "subject", Value("user" + std::to_string(u)))
                  .size(),
              static_cast<std::size_t>(kDocsPerUser))
        << "user " << u;
  }
  const auto avg = gateway.aggregate("obs", "value", schema::Aggregate::kAverage);
  EXPECT_EQ(avg.count, static_cast<std::uint64_t>(kUsers * kDocsPerUser));
}

TEST(ConcurrencyTest, ParallelSearchesDuringWrites) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gateway(rpc, kms, local, registry,
                        core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gateway.register_schema(fhir::benchmark_schema("obs"));

  std::atomic<bool> stop{false};
  std::atomic<int> search_errors{0};
  std::thread reader([&] {
    fhir::ObservationGenerator gen(5);
    while (!stop.load()) {
      try {
        // Results must always be internally consistent (every returned doc
        // actually matches), regardless of concurrent writes.
        const auto v = gen.random_status();
        for (const auto& d : gateway.equality_search("obs", "status", v)) {
          if (!(d.at("status") == v)) ++search_errors;
        }
      } catch (...) {
        ++search_errors;
      }
    }
  });

  fhir::ObservationGenerator gen(6);
  for (int i = 0; i < 60; ++i) gateway.insert("obs", gen.next());
  stop = true;
  reader.join();
  EXPECT_EQ(search_errors.load(), 0);
}

}  // namespace
}  // namespace datablinder
