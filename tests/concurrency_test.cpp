// Concurrency tests: the gateway serves parallel users without corrupting
// tactic state or indexes; the cloud node handles concurrent RPC dispatch;
// stores behave under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>

#include "bigint/bigint.hpp"
#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/hot_cache.hpp"
#include "core/tactics/builtin.hpp"
#include "fhir/observation.hpp"
#include "net/resilience.hpp"
#include "store/kvstore.hpp"

namespace datablinder {
namespace {

using core::DocId;
using doc::Document;
using doc::Value;

TEST(ConcurrencyTest, KvStoreParallelMixedOps) {
  store::KvStore kv;
  constexpr int kThreads = 8;
  constexpr int kOps = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&kv, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "k" + std::to_string(i % 17);
        kv.set(key, Bytes{static_cast<std::uint8_t>(t)});
        kv.sadd("set", std::to_string(t * kOps + i));
        kv.incr("counter");
        kv.zadd("z", Bytes{static_cast<std::uint8_t>(i % 251)}, std::to_string(i));
        kv.get(key);
        kv.zrange("z", Bytes{0}, Bytes{255});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(kv.incr("counter", 0), kThreads * kOps);
  EXPECT_EQ(kv.scard("set"), static_cast<std::size_t>(kThreads * kOps));
}

TEST(ConcurrencyTest, CollectionParallelPutFind) {
  store::Collection col("c");
  col.create_index("v");
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&col, t] {
      for (int i = 0; i < 200; ++i) {
        Document d;
        d.id = std::to_string(t) + "-" + std::to_string(i);
        d.set("v", Value(std::int64_t{i % 13}));
        col.put(std::move(d));
        col.find(store::Filter::eq("v", Value(std::int64_t{i % 13})));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(col.size(), 6u * 200u);
  // Index consistency: each value class has exactly the expected members.
  std::size_t total = 0;
  for (std::int64_t v = 0; v < 13; ++v) {
    total += col.find(store::Filter::eq("v", Value(v))).size();
  }
  EXPECT_EQ(total, 6u * 200u);
}

TEST(ConcurrencyTest, GatewayParallelUsersStayConsistent) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gateway(rpc, kms, local, registry,
                        core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gateway.register_schema(fhir::benchmark_schema("obs"));

  constexpr int kUsers = 6;
  constexpr int kDocsPerUser = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> users;
  for (int u = 0; u < kUsers; ++u) {
    users.emplace_back([&, u] {
      try {
        fhir::ObservationGenerator gen(1000 + u);
        for (int i = 0; i < kDocsPerUser; ++i) {
          Document d = gen.next();
          d.set("subject", Value("user" + std::to_string(u)));
          gateway.insert("obs", d);
          // Interleave reads with writes.
          gateway.equality_search("obs", "subject",
                                  Value("user" + std::to_string(u)));
          if (i % 5 == 0) {
            gateway.aggregate("obs", "value", schema::Aggregate::kAverage);
          }
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : users) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Post-conditions: every user's documents are all present and searchable.
  for (int u = 0; u < kUsers; ++u) {
    EXPECT_EQ(gateway
                  .equality_search("obs", "subject", Value("user" + std::to_string(u)))
                  .size(),
              static_cast<std::size_t>(kDocsPerUser))
        << "user " << u;
  }
  const auto avg = gateway.aggregate("obs", "value", schema::Aggregate::kAverage);
  EXPECT_EQ(avg.count, static_cast<std::uint64_t>(kUsers * kDocsPerUser));
}

TEST(ConcurrencyTest, ParallelSearchesDuringWrites) {
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  core::TacticRegistry registry;
  core::register_builtin_tactics(registry);
  core::Gateway gateway(rpc, kms, local, registry,
                        core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gateway.register_schema(fhir::benchmark_schema("obs"));

  std::atomic<bool> stop{false};
  std::atomic<int> search_errors{0};
  std::thread reader([&] {
    fhir::ObservationGenerator gen(5);
    while (!stop.load()) {
      try {
        // Results must always be internally consistent (every returned doc
        // actually matches), regardless of concurrent writes.
        const auto v = gen.random_status();
        for (const auto& d : gateway.equality_search("obs", "status", v)) {
          if (!(d.at("status") == v)) ++search_errors;
        }
      } catch (...) {
        ++search_errors;
      }
    }
  });

  fhir::ObservationGenerator gen(6);
  for (int i = 0; i < 60; ++i) gateway.insert("obs", gen.next());
  stop = true;
  reader.join();
  EXPECT_EQ(search_errors.load(), 0);
}

// --- per-tactic locking: proof of actual parallelism -------------------------
//
// A rendezvous tactic whose on_insert blocks until `expected` concurrent
// arrivals have checked in. If index updates were serialized behind a
// collection-wide exclusive lock (the pre-exec-subsystem model), the second
// arrival could never happen while the first holds the lock and the
// rendezvous would time out.

struct Rendezvous {
  std::atomic<int> arrivals{0};
  int expected = 2;
  std::atomic<bool> timed_out{false};

  void meet() {
    arrivals.fetch_add(1);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (arrivals.load() < expected) {
      if (std::chrono::steady_clock::now() > deadline) {
        timed_out = true;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
};

class RendezvousTactic : public core::FieldTactic {
 public:
  explicit RendezvousTactic(std::shared_ptr<Rendezvous> rv) : rv_(std::move(rv)) {}

  static core::TacticDescriptor static_descriptor() {
    core::TacticDescriptor d;
    d.name = "Rendezvous";
    d.protection_class = schema::ProtectionClass::kClass5;
    d.serves_operations = {schema::Operation::kInsert, schema::Operation::kEquality};
    d.preference = 1000;  // outbid DET on the C5 equality tie
    return d;
  }

  const core::TacticDescriptor& descriptor() const override {
    static const core::TacticDescriptor d = static_descriptor();
    return d;
  }
  void setup() override {}
  void on_insert(const core::DocId&, const doc::Value&) override { rv_->meet(); }
  void on_delete(const core::DocId&, const doc::Value&) override {}
  std::vector<core::DocId> equality_search(const doc::Value&) override { return {}; }

 private:
  std::shared_ptr<Rendezvous> rv_;
};

struct RendezvousRig {
  RendezvousRig() : rpc(cloud.rpc(), channel) {
    core::register_builtin_tactics(registry);
    registry.register_field_tactic(
        RendezvousTactic::static_descriptor(),
        [rv = rendezvous](const core::GatewayContext&) {
          return std::make_unique<RendezvousTactic>(rv);
        });
  }

  schema::Schema schema_with(const std::string& name,
                             std::initializer_list<const char*> fields) {
    schema::Schema s(name);
    schema::FieldAnnotation f;
    f.type = schema::FieldType::kString;
    f.sensitive = true;
    f.protection = schema::ProtectionClass::kClass5;
    f.operations = {schema::Operation::kInsert, schema::Operation::kEquality};
    for (const char* field : fields) s.field(field, f);
    return s;
  }

  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc;
  kms::KeyManager kms;
  store::KvStore local;
  core::TacticRegistry registry;
  std::shared_ptr<Rendezvous> rendezvous = std::make_shared<Rendezvous>();
};

TEST(IndexFanOutTest, OneInsertIndexesItsFieldsInParallel) {
  // Intra-plan fan-out: a single insert's per-field index steps run on the
  // executor's worker pool concurrently.
  RendezvousRig rig;
  core::GatewayConfig cfg;
  cfg.index_workers = 4;
  core::Gateway gw(rig.rpc, rig.kms, rig.local, rig.registry, cfg);
  gw.register_schema(rig.schema_with("c", {"a", "b"}));
  ASSERT_EQ(gw.plan("c").fields.at("a").eq_tactic, "Rendezvous");

  Document d;
  d.set("a", Value("x"));
  d.set("b", Value("y"));
  gw.insert("c", d);

  EXPECT_FALSE(rig.rendezvous->timed_out.load());
  EXPECT_EQ(rig.rendezvous->arrivals.load(), 2);
}

TEST(IndexFanOutTest, DistinctFieldWritersOfOneCollectionRunInParallel) {
  // Inter-plan parallelism: two users inserting documents that touch
  // DISTINCT fields of the SAME collection contend on nothing — each
  // writer takes only its own field's tactic lock.
  RendezvousRig rig;
  core::Gateway gw(rig.rpc, rig.kms, rig.local, rig.registry, {});
  gw.register_schema(rig.schema_with("c", {"a", "b"}));

  std::thread t1([&] {
    Document d;
    d.set("a", Value("x"));
    gw.insert("c", d);
  });
  std::thread t2([&] {
    Document d;
    d.set("b", Value("y"));
    gw.insert("c", d);
  });
  t1.join();
  t2.join();

  EXPECT_FALSE(rig.rendezvous->timed_out.load());
  EXPECT_EQ(rig.rendezvous->arrivals.load(), 2);
}

TEST(IndexFanOutTest, DistinctCollectionWritersRunInParallel) {
  RendezvousRig rig;
  core::Gateway gw(rig.rpc, rig.kms, rig.local, rig.registry, {});
  gw.register_schema(rig.schema_with("left", {"a"}));
  gw.register_schema(rig.schema_with("right", {"a"}));

  std::thread t1([&] {
    Document d;
    d.set("a", Value("x"));
    gw.insert("left", d);
  });
  std::thread t2([&] {
    Document d;
    d.set("a", Value("y"));
    gw.insert("right", d);
  });
  t1.join();
  t2.join();

  EXPECT_FALSE(rig.rendezvous->timed_out.load());
  EXPECT_EQ(rig.rendezvous->arrivals.load(), 2);
}

TEST(ConcurrencyTest, ChannelConfigMutationRacesTransfers) {
  // Regression: set_config() used to write the config while transfer_*
  // read it unguarded — a data race TSan flags. Transfers running
  // concurrently with config/fault-plan churn must see either the old or
  // the new config, never a torn mix, and the ordinal counter must stay
  // exact.
  net::Channel ch;
  constexpr int kTransferThreads = 4;
  constexpr int kOps = 500;
  std::atomic<std::uint64_t> completed{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kTransferThreads; ++t) {
    threads.emplace_back([&ch, &completed] {
      for (int i = 0; i < kOps; ++i) {
        // Every transfer_* call consumes exactly one ordinal, delivered or
        // faulted; a faulted request skips the response leg.
        bool request_ok = true;
        try {
          ch.transfer_request(64, "m.op");
        } catch (const Error&) {
          request_ok = false;
        }
        completed.fetch_add(1);
        if (request_ok) {
          try {
            ch.transfer_response(64, "m.op");
          } catch (const Error&) {
          }
          completed.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&ch] {
    for (int i = 0; i < 200; ++i) {
      net::ChannelConfig cfg;
      cfg.failure_probability = (i % 2 == 0) ? 0.0 : 0.05;
      cfg.fault_seed = static_cast<std::uint64_t>(i + 1);
      ch.set_config(cfg);
      ch.config();
      if (i % 50 == 0) {
        net::FaultPlan plan;
        plan.method_faults = {{"m.", 0, 3}};
        ch.set_fault_plan(plan);
      } else if (i % 50 == 25) {
        ch.clear_fault_plan();
      }
    }
  });
  for (auto& t : threads) t.join();

  // Every attempted transfer (delivered or faulted) got a unique ordinal.
  EXPECT_EQ(ch.transfers(), completed.load());
  EXPECT_EQ(ch.stats().bytes_sent.load() % 64, 0u);
}

TEST(ConcurrencyTest, HotCacheReadsRaceInvalidation) {
  // The gateway's hot cache serves trapdoors and decrypted documents from
  // query threads while mutating operations bump epochs and erase keys.
  // Racing readers against invalidators must stay TSan-clean: a get sees
  // a fresh value or a miss, never a torn entry, and the counters balance.
  core::HotCache cache(nullptr, core::HotCache::Config{64});
  constexpr int kReaders = 4;
  constexpr int kOps = 2000;
  std::atomic<std::uint64_t> served{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&cache, &served, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "doc/obs/" + std::to_string(i % 97);
        const auto cached = cache.get(key);
        if (cached.has_value()) {
          // Values are never torn: each entry is one byte tagged by its
          // writer, re-put whole.
          ASSERT_EQ(cached->size(), 1u);
          served.fetch_add(1);
        } else {
          cache.put(key, Bytes{static_cast<std::uint8_t>(t)}, "obs");
        }
        if (i % 31 == 0) {
          cache.montgomery(bigint::BigInt(257));  // shared, never evicted
        }
      }
    });
  }
  // Fixed iteration count (not a stop flag): the invalidator is
  // guaranteed its bumps even if the scheduler starves it until the
  // readers are done, so the counter floor below is deterministic.
  threads.emplace_back([&cache] {
    for (int n = 1; n <= 600; ++n) {
      if (n % 3 == 0) {
        cache.bump_epoch("obs");
      } else {
        cache.erase("doc/obs/" + std::to_string(n % 97));
      }
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();

  EXPECT_LE(cache.size(), 64u);
  EXPECT_EQ(cache.hits(), served.load());
  EXPECT_GE(cache.invalidations(), 1u);
  // Montgomery contexts dedupe to one shared instance per modulus.
  EXPECT_EQ(cache.montgomery(bigint::BigInt(257)),
            cache.montgomery(bigint::BigInt(257)));
}

TEST(ConcurrencyTest, BreakerHalfOpenAdmitsExactlyOneProbePerWindow) {
  // Regression for the half-open probe token: when the cooldown elapses and
  // many callers race try_admit at the same instant, exactly ONE of them
  // may own the probe. A second probe would double the load on an endpoint
  // the breaker believes is down — the opposite of load shedding.
  net::CircuitBreaker breaker;
  net::BreakerConfig cfg;
  cfg.enabled = true;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_us = 10000;
  breaker.configure(cfg);

  breaker.on_failure(/*now_us=*/1000);  // trips open
  ASSERT_EQ(breaker.state(), net::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.try_admit(1000 + cfg.open_cooldown_us - 1));

  auto race_admits = [&breaker](std::uint64_t now_us) {
    constexpr int kThreads = 16;
    std::atomic<int> admitted{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&breaker, &admitted, now_us] {
        for (int i = 0; i < 50; ++i) {
          if (breaker.try_admit(now_us)) admitted.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    return admitted.load();
  };

  // Window 1: cooldown elapsed, 16 threads x 50 attempts -> one token.
  EXPECT_EQ(race_admits(1000 + cfg.open_cooldown_us), 1);
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kHalfOpen);

  // The probe's owner never reports an outcome (e.g. its thread died
  // between admission and the call). After a FULL further cooldown the
  // token is reclaimed — again to exactly one new owner.
  EXPECT_EQ(race_admits(1000 + 2 * cfg.open_cooldown_us - 1), 0);
  EXPECT_EQ(race_admits(1000 + 2 * cfg.open_cooldown_us), 1);

  // A reported outcome resolves the window: success closes the breaker and
  // admission goes wide open again.
  breaker.on_success();
  EXPECT_EQ(breaker.state(), net::CircuitBreaker::State::kClosed);
  EXPECT_EQ(race_admits(1000 + 3 * cfg.open_cooldown_us), 16 * 50);

  // ...and a failed probe re-opens with a fresh cooldown, one probe again.
  breaker.on_failure(/*now_us=*/500000);
  ASSERT_EQ(breaker.state(), net::CircuitBreaker::State::kOpen);
  EXPECT_EQ(race_admits(500000 + cfg.open_cooldown_us - 1), 0);
  EXPECT_EQ(race_admits(500000 + cfg.open_cooldown_us), 1);
}

}  // namespace
}  // namespace datablinder
