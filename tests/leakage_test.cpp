// Leakage-model tests: the Fuller et al. taxonomy the protection classes
// are built on (§3.1), made concrete. For each class we play the adversary
// with exactly the cloud's view and check what is — and is not —
// recoverable. These tests pin the *semantics* of the class numbers the
// policy engine trades on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "ppe/det.hpp"
#include "ppe/ope.hpp"
#include "ppe/ore.hpp"
#include "ppe/rnd.hpp"
#include "sse/mitra.hpp"

namespace datablinder {
namespace {

// A skewed plaintext distribution the adversary knows (auxiliary data).
std::vector<std::string> skewed_corpus() {
  std::vector<std::string> out;
  for (int i = 0; i < 60; ++i) out.push_back("flu");        // 60%
  for (int i = 0; i < 30; ++i) out.push_back("diabetes");   // 30%
  for (int i = 0; i < 10; ++i) out.push_back("hiv");        // 10%
  return out;
}

TEST(LeakageTest, Class4DetRevealsExactFrequencyHistogram) {
  // DET (equalities leak): the ciphertext multiset has the same histogram
  // as the plaintexts — frequency analysis applies (Naveed et al.).
  ppe::DetCipher det(Bytes(32, 1), "diagnosis");
  std::map<Bytes, int> histogram;
  for (const auto& word : skewed_corpus()) ++histogram[det.encrypt(to_bytes(word))];

  std::vector<int> counts;
  for (const auto& [ct, n] : histogram) counts.push_back(n);
  std::sort(counts.rbegin(), counts.rend());
  // The adversary reads off 60/30/10 — full histogram recovery.
  EXPECT_EQ(counts, (std::vector<int>{60, 30, 10}));
}

TEST(LeakageTest, Class1RndHidesTheHistogram) {
  // RND (structure only): every ciphertext is unique; the histogram
  // degenerates to all-ones and frequency analysis gets nothing.
  ppe::RndCipher rnd(Bytes(32, 2), "diagnosis");
  std::map<Bytes, int> histogram;
  for (const auto& word : skewed_corpus()) ++histogram[rnd.encrypt(to_bytes(word))];
  for (const auto& [ct, n] : histogram) EXPECT_EQ(n, 1);
  EXPECT_EQ(histogram.size(), skewed_corpus().size());
}

TEST(LeakageTest, Class2MitraHidesHistogramUntilQueried) {
  // Mitra at rest (structure): every index entry has a unique PRF address
  // and a unique pad — the server-side multiset carries no repetitions
  // even for repeated keywords. Identifiers leak only AT SEARCH TIME
  // (access pattern), which is what Class 2 means.
  sse::MitraClient client(Bytes(32, 3));
  std::set<Bytes> addresses;
  std::set<Bytes> values;
  for (const auto& word : skewed_corpus()) {
    const auto token = client.update(sse::MitraOp::kAdd, word, "doc");
    addresses.insert(token.address);
    values.insert(token.value);
  }
  EXPECT_EQ(addresses.size(), skewed_corpus().size());  // all distinct
  EXPECT_EQ(values.size(), skewed_corpus().size());

  // At query time the access pattern reveals the searched keyword's
  // result size — the declared identifiers leakage, nothing more.
  const auto flu_token = client.search_token("flu");
  EXPECT_EQ(flu_token.addresses.size(), 60u);
}

TEST(LeakageTest, Class5OpeRevealsTotalOrder) {
  // OPE (order leaks): sorting ciphertexts sorts the plaintexts — the
  // adversary recovers the full rank of every stored value at rest.
  ppe::OpeCipher ope(Bytes(32, 4), "age");
  DetRng rng(5);
  std::vector<std::pair<ppe::Ope128, std::uint64_t>> pairs;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t age = rng.uniform(120);
    pairs.emplace_back(ope.encrypt(age), age);
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i + 1 < pairs.size(); ++i) {
    EXPECT_LE(pairs[i].second, pairs[i + 1].second);  // ct order == pt order
  }
}

TEST(LeakageTest, OreRestingCiphertextsResistSorting) {
  // ORE's improvement over OPE: two RIGHT ciphertexts are mutually
  // incomparable — the adversary holding only the stored index cannot run
  // the comparison (it needs a left token, which only queries produce).
  // Structural check: right ciphertexts of equal plaintexts are distinct
  // and carry fresh nonces, so byte-order of serializations is meaningless.
  ppe::OreCipher ore(Bytes(32, 5), "age", 64);
  EXPECT_NE(ore.encrypt_right(30).serialize(), ore.encrypt_right(30).serialize());

  // Sorting the serialized right ciphertexts of an increasing plaintext
  // sequence must NOT reproduce the plaintext order: the leading bytes are
  // a fresh random nonce, so the byte order is noise. (Contrast with the
  // OPE test above, where sorting is exactly the attack.)
  std::vector<Bytes> rights;
  for (std::uint64_t v = 0; v < 40; ++v) rights.push_back(ore.encrypt_right(v).serialize());
  std::size_t inversions = 0;
  for (std::size_t i = 0; i + 1 < rights.size(); ++i) {
    if (rights[i] > rights[i + 1]) ++inversions;
  }
  EXPECT_GT(inversions, 0u);  // probability of zero inversions: 1/40!
  // The real guarantee — comparison requires a query-issued left token —
  // is architectural: OreCipher::compare takes an OreLeft by type.
}

TEST(LeakageTest, DetContextsPartitionFrequencyAnalysis) {
  // Cross-field protection: the same plaintext in two DET fields yields
  // unlinkable ciphertexts, so an adversary cannot join histograms across
  // fields (the per-field context in the DET tactic).
  ppe::DetCipher status(Bytes(32, 6), "obs.status");
  ppe::DetCipher interp(Bytes(32, 6), "obs.interpretation");
  EXPECT_NE(status.encrypt(to_bytes("final")), interp.encrypt(to_bytes("final")));
}

TEST(LeakageTest, MitraForwardPrivacyAcrossSearch) {
  // After the server has seen a search for keyword w (all current
  // addresses), the NEXT update for w is still unlinkable: its address is
  // outside everything derivable from the revealed tokens.
  sse::MitraClient client(Bytes(32, 7));
  sse::MitraServer server;
  for (int i = 0; i < 5; ++i) {
    server.apply_update(client.update(sse::MitraOp::kAdd, "w", "d" + std::to_string(i)));
  }
  const auto revealed = client.search_token("w");
  const std::set<Bytes> seen(revealed.addresses.begin(), revealed.addresses.end());

  const auto future = client.update(sse::MitraOp::kAdd, "w", "d-new");
  EXPECT_FALSE(seen.count(future.address));
  // And the fresh address is a full-entropy PRF output, not derivable by
  // extending any revealed address (structural distinctness is the
  // testable surface of the forward-privacy proof).
  for (const auto& addr : seen) {
    EXPECT_NE(addr, future.address);
  }
}

}  // namespace
}  // namespace datablinder
