// Robustness "fuzz" tests: every decode path that consumes bytes from the
// untrusted zone (wire codecs, token deserializers, the batch handler, the
// cloud RPC surface) must reject arbitrary garbage with a typed error —
// never crash, hang, or mis-parse silently.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "core/cloud_node.hpp"
#include "doc/binary_codec.hpp"
#include "doc/json.hpp"
#include "net/message.hpp"
#include "net/rpc.hpp"
#include "ppe/ore.hpp"
#include "sse/index_common.hpp"

namespace datablinder {
namespace {

/// Drives a decode callback with structured mutations: random buffers,
/// truncations of valid encodings, and bit flips.
template <typename Decode>
void fuzz_decoder(const Bytes& valid, Decode&& decode, int iterations = 300) {
  DetRng rng(1234);
  // Pure random buffers of assorted sizes.
  for (int i = 0; i < iterations; ++i) {
    const Bytes garbage = rng.bytes(rng.uniform(200));
    try {
      decode(garbage);
    } catch (const Error&) {
      // typed rejection: exactly what we want
    }
  }
  // Every truncation of a valid encoding.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const Bytes prefix(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      decode(prefix);
    } catch (const Error&) {
    }
  }
  // Single-bit flips over a valid encoding.
  for (std::size_t bit = 0; bit < valid.size() * 8 && bit < 512; bit += 3) {
    Bytes mutated = valid;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    try {
      decode(mutated);
    } catch (const Error&) {
    }
  }
}

TEST(FuzzTest, BinaryCodecNeverCrashes) {
  doc::Object obj;
  obj["s"] = doc::Value("hello");
  obj["n"] = doc::Value(std::int64_t{42});
  obj["arr"] = doc::Value(doc::Array{doc::Value(1.5), doc::Value(Bytes{1, 2, 3})});
  const Bytes valid = doc::encode_value(doc::Value(obj));
  fuzz_decoder(valid, [](BytesView b) { doc::decode_value(b); });
}

TEST(FuzzTest, DocumentCodecNeverCrashes) {
  doc::Document d;
  d.id = "doc-1";
  d.set("f", doc::Value("v"));
  const Bytes valid = doc::encode_document(d);
  fuzz_decoder(valid, [](BytesView b) { doc::decode_document(b); });
}

TEST(FuzzTest, WireMessagesNeverCrash) {
  net::Request r;
  r.method = "det.search";
  r.payload = Bytes{1, 2, 3, 4};
  fuzz_decoder(r.serialize(), [](BytesView b) { net::Request::deserialize(b); });
  fuzz_decoder(net::Response::success(Bytes{5, 6}).serialize(),
               [](BytesView b) { net::Response::deserialize(b); });
}

TEST(FuzzTest, OreTokensNeverCrash) {
  ppe::OreCipher ore(Bytes(32, 9), "f", 32);
  fuzz_decoder(ore.encrypt_left(123).serialize(),
               [](BytesView b) { ppe::OreLeft::deserialize(b); });
  fuzz_decoder(ore.encrypt_right(123).serialize(),
               [](BytesView b) { ppe::OreRight::deserialize(b); });
}

TEST(FuzzTest, IdListAndCountersNeverCrash) {
  fuzz_decoder(sse::encode_id_list({"a", "bb", "ccc"}),
               [](BytesView b) { sse::decode_id_list(b); });
  sse::KeywordCounters counters;
  counters.increment("w1");
  counters.increment("w2");
  fuzz_decoder(counters.serialize(),
               [](BytesView b) { sse::KeywordCounters::deserialize(b); });
}

TEST(FuzzTest, JsonParserNeverCrashes) {
  DetRng rng(77);
  const char* seeds[] = {R"({"a":[1,2,{"b":null}],"c":"x"})", "[[[[]]]]",
                         R"("strA\n")", "-1.5e10"};
  for (const char* seed : seeds) {
    std::string s = seed;
    for (int i = 0; i < 200; ++i) {
      std::string mutated = s;
      const std::size_t pos = rng.uniform(mutated.size());
      mutated[pos] = static_cast<char>(rng.uniform(256));
      try {
        doc::parse_json(mutated);
      } catch (const Error&) {
      }
    }
    for (std::size_t len = 0; len < s.size(); ++len) {
      try {
        doc::parse_json(std::string_view(s).substr(0, len));
      } catch (const Error&) {
      }
    }
  }
}

TEST(FuzzTest, CloudRpcSurfaceSurvivesGarbage) {
  // Fire random bytes at every registered method; the node must answer
  // with typed errors and stay serviceable.
  core::CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  DetRng rng(31337);
  const char* methods[] = {"doc.put",     "doc.get",      "det.insert",
                           "det.search",  "ope.insert",   "ope.range",
                           "ore.insert",  "ore.range",    "mitra.update",
                           "mitra.search", "sophos.update", "iex.search",
                           "zmf.update",  "agg.sum",      "plain.find_eq",
                           "rpc.batch",   "admin.storage"};
  for (const char* method : methods) {
    for (int i = 0; i < 60; ++i) {
      try {
        rpc.call(method, rng.bytes(rng.uniform(120)));
      } catch (const Error&) {
      }
    }
  }
  // Still alive and correct afterwards.
  const Bytes reply = rpc.call("admin.storage", doc::encode_value(doc::Value(doc::Object{})));
  EXPECT_FALSE(reply.empty());
}

TEST(FuzzTest, BatchHandlerRejectsMalformedFrames) {
  net::RpcServer server;
  server.register_method("ok", [](BytesView) { return Bytes{8, 0, 0, 0, 0}; });
  server.register_method("rpc.batch", net::RpcClient::make_batch_handler(server));
  net::Channel channel;
  net::RpcClient client(server, channel);

  DetRng rng(99);
  for (int i = 0; i < 200; ++i) {
    try {
      client.call("rpc.batch", rng.bytes(rng.uniform(100)));
    } catch (const Error&) {
    }
  }
  // Valid batches still work after the abuse.
  client.begin_deferred({"ok"});
  client.call("ok", {});
  EXPECT_EQ(client.flush_deferred(), 1u);
}

}  // namespace
}  // namespace datablinder
