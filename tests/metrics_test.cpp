// PerfRegistry tests — the Fig. 1 performance-metrics reification and its
// integration in the gateway's dispatch paths.
#include <gtest/gtest.h>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/metrics.hpp"
#include "core/tactics/builtin.hpp"
#include "fhir/observation.hpp"

namespace datablinder::core {
namespace {

using doc::Document;
using doc::Value;

TEST(PerfRegistryTest, RecordsAndAggregates) {
  PerfRegistry reg;
  reg.record("DET", TacticOperation::kInsert, 1000);
  reg.record("DET", TacticOperation::kInsert, 3000);
  reg.record("DET", TacticOperation::kEqualitySearch, 500);

  const OpStats inserts = reg.stats("DET", TacticOperation::kInsert);
  EXPECT_EQ(inserts.count, 2u);
  EXPECT_EQ(inserts.total_ns, 4000u);
  EXPECT_EQ(inserts.max_ns, 3000u);
  EXPECT_DOUBLE_EQ(inserts.mean_us(), 2.0);

  EXPECT_EQ(reg.stats("DET", TacticOperation::kEqualitySearch).count, 1u);
  EXPECT_EQ(reg.stats("Mitra", TacticOperation::kInsert).count, 0u);
  EXPECT_EQ(reg.snapshot().size(), 2u);

  reg.reset();
  EXPECT_EQ(reg.snapshot().size(), 0u);
}

TEST(PerfRegistryTest, ScopedPerfFilesOnDestruction) {
  PerfRegistry reg;
  { ScopedPerf s(reg, "OPE", TacticOperation::kRangeQuery); }
  EXPECT_EQ(reg.stats("OPE", TacticOperation::kRangeQuery).count, 1u);
}

TEST(PerfRegistryTest, EwmaTracksWorkloadShifts) {
  PerfRegistry reg;
  reg.record("OPE", TacticOperation::kRangeQuery, 100'000);  // first sample seeds
  EXPECT_DOUBLE_EQ(reg.stats("OPE", TacticOperation::kRangeQuery).ewma_us, 100.0);

  // A sustained 5x slowdown pulls the EWMA most of the way within a few
  // half-lives (alpha = 1/8) but never overshoots the new level.
  for (int i = 0; i < 40; ++i) reg.record("OPE", TacticOperation::kRangeQuery, 500'000);
  const OpStats s = reg.stats("OPE", TacticOperation::kRangeQuery);
  EXPECT_GT(s.ewma_us, 450.0);
  EXPECT_LE(s.ewma_us, 500.0);
}

TEST(PerfRegistryTest, QuantilesComeFromTheDecayWindow) {
  PerfRegistry reg;
  // 90 fast samples + 10 slow outliers: p50 stays fast, p95 sees the tail.
  for (int i = 0; i < 90; ++i) reg.record("DET", TacticOperation::kInsert, 10'000);
  for (int i = 0; i < 10; ++i) reg.record("DET", TacticOperation::kInsert, 900'000);
  OpStats s = reg.stats("DET", TacticOperation::kInsert);
  EXPECT_DOUBLE_EQ(s.p50_us, 10.0);
  EXPECT_DOUBLE_EQ(s.p95_us, 900.0);

  // The ring decays: after kWindow newer samples the outliers age out
  // entirely, while cumulative count/total keep the full history.
  for (std::size_t i = 0; i < PerfSeries::kWindow; ++i) {
    reg.record("DET", TacticOperation::kInsert, 20'000);
  }
  s = reg.stats("DET", TacticOperation::kInsert);
  EXPECT_DOUBLE_EQ(s.p50_us, 20.0);
  EXPECT_DOUBLE_EQ(s.p95_us, 20.0);
  EXPECT_EQ(s.count, 100u + PerfSeries::kWindow);
  EXPECT_EQ(s.max_ns, 900'000u);
}

TEST(PerfRegistryTest, HandleIsStableAndSeesLaterRecords) {
  PerfRegistry reg;
  const PerfSeries* h = reg.handle("plan.OPE", TacticOperation::kRangeQuery);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->recent_count(), 0u);

  reg.record("plan.OPE", TacticOperation::kRangeQuery, 2'000);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_DOUBLE_EQ(h->ewma_us(), 2.0);
  // Resolving again yields the same series (stable address for hot loops).
  EXPECT_EQ(reg.handle("plan.OPE", TacticOperation::kRangeQuery), h);
  // recent_count saturates at the window size.
  for (int i = 0; i < 300; ++i) reg.record("plan.OPE", TacticOperation::kRangeQuery, 1'000);
  EXPECT_EQ(h->recent_count(), PerfSeries::kWindow);
}

TEST(PerfRegistryTest, ReportRenders) {
  PerfRegistry reg;
  reg.record("Paillier", TacticOperation::kAverage, 5000000);
  const std::string report = reg.report();
  EXPECT_NE(report.find("Paillier"), std::string::npos);
  EXPECT_NE(report.find("average"), std::string::npos);
}

TEST(GatewayMetricsTest, EveryTacticPathIsAccounted) {
  CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  TacticRegistry registry;
  register_builtin_tactics(registry);
  Gateway gateway(rpc, kms, local, registry,
                  GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gateway.register_schema(fhir::observation_schema("obs"));

  fhir::ObservationGenerator gen(1);
  for (int i = 0; i < 5; ++i) gateway.insert("obs", gen.next());
  gateway.equality_search("obs", "subject", gen.random_subject());
  gateway.equality_search("obs", "status", gen.random_status());
  const auto [lo, hi] = gen.random_effective_range();
  gateway.range_search("obs", "effective", lo, hi);
  gateway.aggregate("obs", "value", schema::Aggregate::kAverage);

  const PerfRegistry& perf = gateway.perf();
  // Inserts: 5 each through Mitra, DET (x2 fields), OPE (x2 fields as one
  // tactic instance per field), Paillier, BIEX, RND.
  EXPECT_EQ(perf.stats("Mitra", TacticOperation::kInsert).count, 5u);
  EXPECT_EQ(perf.stats("BIEX-2Lev", TacticOperation::kInsert).count, 5u);
  EXPECT_EQ(perf.stats("Paillier", TacticOperation::kInsert).count, 5u);
  EXPECT_EQ(perf.stats("DET", TacticOperation::kInsert).count, 10u);  // 2 fields
  EXPECT_EQ(perf.stats("OPE", TacticOperation::kInsert).count, 10u);  // 2 fields

  // Queries.
  EXPECT_EQ(perf.stats("Mitra", TacticOperation::kEqualitySearch).count, 1u);
  EXPECT_EQ(perf.stats("BIEX-2Lev", TacticOperation::kEqualitySearch).count, 1u);
  EXPECT_EQ(perf.stats("OPE", TacticOperation::kRangeQuery).count, 1u);
  EXPECT_EQ(perf.stats("Paillier", TacticOperation::kAverage).count, 1u);

  // Timings are plausible (positive, bounded mean).
  EXPECT_GT(perf.stats("Paillier", TacticOperation::kInsert).mean_us(), 0.0);
  EXPECT_FALSE(perf.report().empty());
}

TEST(GatewayMetricsTest, BooleanSearchAttributesToTactics) {
  CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  TacticRegistry registry;
  register_builtin_tactics(registry);
  Gateway gateway(rpc, kms, local, registry,
                  GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gateway.register_schema(fhir::observation_schema("obs"));

  fhir::ObservationGenerator gen(2);
  for (int i = 0; i < 3; ++i) gateway.insert("obs", gen.next());

  FieldBoolQuery q;
  q.dnf.push_back({{"status", Value("final")},
                   {"effective", Value(std::int64_t{1})}});  // BIEX term + DET term
  gateway.boolean_search("obs", q);

  EXPECT_EQ(gateway.perf().stats("BIEX-2Lev", TacticOperation::kBooleanSearch).count,
            1u);
  EXPECT_EQ(gateway.perf().stats("DET", TacticOperation::kEqualitySearch).count, 1u);
}

}  // namespace
}  // namespace datablinder::core
