// PerfRegistry tests — the Fig. 1 performance-metrics reification and its
// integration in the gateway's dispatch paths.
#include <gtest/gtest.h>

#include "core/cloud_node.hpp"
#include "core/gateway.hpp"
#include "core/metrics.hpp"
#include "core/tactics/builtin.hpp"
#include "fhir/observation.hpp"

namespace datablinder::core {
namespace {

using doc::Document;
using doc::Value;

TEST(PerfRegistryTest, RecordsAndAggregates) {
  PerfRegistry reg;
  reg.record("DET", TacticOperation::kInsert, 1000);
  reg.record("DET", TacticOperation::kInsert, 3000);
  reg.record("DET", TacticOperation::kEqualitySearch, 500);

  const OpStats inserts = reg.stats("DET", TacticOperation::kInsert);
  EXPECT_EQ(inserts.count, 2u);
  EXPECT_EQ(inserts.total_ns, 4000u);
  EXPECT_EQ(inserts.max_ns, 3000u);
  EXPECT_DOUBLE_EQ(inserts.mean_us(), 2.0);

  EXPECT_EQ(reg.stats("DET", TacticOperation::kEqualitySearch).count, 1u);
  EXPECT_EQ(reg.stats("Mitra", TacticOperation::kInsert).count, 0u);
  EXPECT_EQ(reg.snapshot().size(), 2u);

  reg.reset();
  EXPECT_EQ(reg.snapshot().size(), 0u);
}

TEST(PerfRegistryTest, ScopedPerfFilesOnDestruction) {
  PerfRegistry reg;
  { ScopedPerf s(reg, "OPE", TacticOperation::kRangeQuery); }
  EXPECT_EQ(reg.stats("OPE", TacticOperation::kRangeQuery).count, 1u);
}

TEST(PerfRegistryTest, ReportRenders) {
  PerfRegistry reg;
  reg.record("Paillier", TacticOperation::kAverage, 5000000);
  const std::string report = reg.report();
  EXPECT_NE(report.find("Paillier"), std::string::npos);
  EXPECT_NE(report.find("average"), std::string::npos);
}

TEST(GatewayMetricsTest, EveryTacticPathIsAccounted) {
  CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  TacticRegistry registry;
  register_builtin_tactics(registry);
  Gateway gateway(rpc, kms, local, registry,
                  GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gateway.register_schema(fhir::observation_schema("obs"));

  fhir::ObservationGenerator gen(1);
  for (int i = 0; i < 5; ++i) gateway.insert("obs", gen.next());
  gateway.equality_search("obs", "subject", gen.random_subject());
  gateway.equality_search("obs", "status", gen.random_status());
  const auto [lo, hi] = gen.random_effective_range();
  gateway.range_search("obs", "effective", lo, hi);
  gateway.aggregate("obs", "value", schema::Aggregate::kAverage);

  const PerfRegistry& perf = gateway.perf();
  // Inserts: 5 each through Mitra, DET (x2 fields), OPE (x2 fields as one
  // tactic instance per field), Paillier, BIEX, RND.
  EXPECT_EQ(perf.stats("Mitra", TacticOperation::kInsert).count, 5u);
  EXPECT_EQ(perf.stats("BIEX-2Lev", TacticOperation::kInsert).count, 5u);
  EXPECT_EQ(perf.stats("Paillier", TacticOperation::kInsert).count, 5u);
  EXPECT_EQ(perf.stats("DET", TacticOperation::kInsert).count, 10u);  // 2 fields
  EXPECT_EQ(perf.stats("OPE", TacticOperation::kInsert).count, 10u);  // 2 fields

  // Queries.
  EXPECT_EQ(perf.stats("Mitra", TacticOperation::kEqualitySearch).count, 1u);
  EXPECT_EQ(perf.stats("BIEX-2Lev", TacticOperation::kEqualitySearch).count, 1u);
  EXPECT_EQ(perf.stats("OPE", TacticOperation::kRangeQuery).count, 1u);
  EXPECT_EQ(perf.stats("Paillier", TacticOperation::kAverage).count, 1u);

  // Timings are plausible (positive, bounded mean).
  EXPECT_GT(perf.stats("Paillier", TacticOperation::kInsert).mean_us(), 0.0);
  EXPECT_FALSE(perf.report().empty());
}

TEST(GatewayMetricsTest, BooleanSearchAttributesToTactics) {
  CloudNode cloud;
  net::Channel channel;
  net::RpcClient rpc(cloud.rpc(), channel);
  kms::KeyManager kms;
  store::KvStore local;
  TacticRegistry registry;
  register_builtin_tactics(registry);
  Gateway gateway(rpc, kms, local, registry,
                  GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gateway.register_schema(fhir::observation_schema("obs"));

  fhir::ObservationGenerator gen(2);
  for (int i = 0; i < 3; ++i) gateway.insert("obs", gen.next());

  FieldBoolQuery q;
  q.dnf.push_back({{"status", Value("final")},
                   {"effective", Value(std::int64_t{1})}});  // BIEX term + DET term
  gateway.boolean_search("obs", q);

  EXPECT_EQ(gateway.perf().stats("BIEX-2Lev", TacticOperation::kBooleanSearch).count,
            1u);
  EXPECT_EQ(gateway.perf().stats("DET", TacticOperation::kEqualitySearch).count, 1u);
}

}  // namespace
}  // namespace datablinder::core
