// Cross-module integration tests: the three evaluation scenarios agree on
// results, the load generator produces consistent accounting, the §5.1
// worked example runs end to end, and cloud-side observability matches.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "common/stopwatch.hpp"
#include "core/tactics/builtin.hpp"
#include "core/wire.hpp"
#include "fhir/observation.hpp"
#include "workload/loadgen.hpp"
#include "workload/scenarios.hpp"

namespace datablinder::workload {
namespace {

using doc::Document;
using doc::Value;

core::TacticRegistry& shared_registry() {
  static core::TacticRegistry r = [] {
    core::TacticRegistry reg;
    core::register_builtin_tactics(reg);
    return reg;
  }();
  return r;
}

TEST(ScenarioTest, AllThreeScenariosAgreeOnResults) {
  ScenarioHarness ha, hb, hc;
  ScenarioA sa(ha);
  ScenarioB sb(hb);
  ScenarioC sc(hc, shared_registry());

  fhir::ObservationGenerator gen(1234);
  std::vector<Document> corpus;
  for (int i = 0; i < 40; ++i) corpus.push_back(gen.next());

  for (const auto& d : corpus) {
    sa.insert_document(d);
    sb.insert_document(d);
    sc.insert_document(d);
  }

  // Equality searches return identical counts in all scenarios.
  fhir::ObservationGenerator qgen(77);
  for (int i = 0; i < 10; ++i) {
    const Value status = qgen.random_status();
    const Value code = qgen.random_code();
    const Value subject = qgen.random_subject();
    EXPECT_EQ(sa.equality_search("status", status), sb.equality_search("status", status));
    EXPECT_EQ(sb.equality_search("status", status), sc.equality_search("status", status));
    EXPECT_EQ(sa.equality_search("code", code), sc.equality_search("code", code));
    EXPECT_EQ(sa.equality_search("subject", subject),
              sc.equality_search("subject", subject));
  }

  // Aggregates agree up to the Paillier fixed-point resolution.
  const double plain_avg = sa.aggregate_average("value");
  EXPECT_NEAR(sb.aggregate_average("value"), plain_avg, 0.01);
  EXPECT_NEAR(sc.aggregate_average("value"), plain_avg, 0.01);
}

TEST(ScenarioTest, LoadGeneratorAccountingIsConsistent) {
  ScenarioHarness h;
  ScenarioC sc(h, shared_registry());
  LoadConfig cfg;
  cfg.users = 4;
  cfg.total_requests = 120;
  cfg.preload_documents = 30;
  const RunResult r = run_load(sc, cfg);

  EXPECT_EQ(r.total_requests, 120u);
  EXPECT_EQ(r.write.count + r.read.count + r.aggregate.count, 120u);
  EXPECT_GT(r.overall_throughput_rps, 0.0);
  EXPECT_GT(r.duration_s, 0.0);
  EXPECT_GT(r.overall_latency.p99_us, 0.0);
  EXPECT_LE(r.overall_latency.p50_us, r.overall_latency.p99_us);
  // Balanced thirds within statistical slack.
  EXPECT_GT(r.write.count, 15u);
  EXPECT_GT(r.read.count, 15u);
  EXPECT_GT(r.aggregate.count, 15u);
  EXPECT_FALSE(r.to_report().empty());
}

TEST(ScenarioTest, CloudTracksIndexOpsAndStorage) {
  ScenarioHarness h;
  ScenarioC sc(h, shared_registry());
  fhir::ObservationGenerator gen(5);
  for (int i = 0; i < 10; ++i) sc.insert_document(gen.next());

  // 8 tactic index updates per insert (5 DET + Mitra + Paillier + doc) —
  // at least 7 index ops per document.
  EXPECT_GE(h.cloud_node.index_ops(), 70u);
  EXPECT_GT(h.cloud_node.storage_bytes(), 0u);
  EXPECT_GT(h.channel.stats().bytes_sent.load(), 0u);
  EXPECT_GT(h.channel.stats().round_trips.load(), 10u);
}

TEST(ScenarioTest, Section51WorkedExampleEndToEnd) {
  // The paper's running example: the f001 glucose observation, annotated
  // per §5.1, inserted and queried through every selected tactic.
  ScenarioHarness h;
  core::Gateway gateway(h.rpc, h.kms, h.local_store, shared_registry(),
                        core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});
  gateway.register_schema(fhir::observation_schema("observations"));

  Document f001;
  f001.id = "f001";
  f001.set("identifier", Value(std::int64_t{6323}));
  f001.set("status", Value("final"));
  f001.set("code", Value("glucose"));
  f001.set("subject", Value("John Doe"));
  f001.set("effective", Value(std::int64_t{1359966610}));
  f001.set("issued", Value(std::int64_t{1362407410}));
  f001.set("performer", Value("John Smith"));
  f001.set("value", Value(6.3));
  f001.set("interpretation", Value("High"));
  gateway.insert("observations", f001);

  // Boolean search over status & code (BIEX-2Lev).
  core::FieldBoolQuery q;
  q.dnf.push_back({{"status", Value("final")}, {"code", Value("glucose")}});
  EXPECT_EQ(gateway.boolean_search("observations", q).size(), 1u);

  // Identifier-protected subject search (Mitra).
  EXPECT_EQ(gateway.equality_search("observations", "subject", Value("John Doe")).size(),
            1u);

  // Range query over effective (DET+OPE).
  EXPECT_EQ(gateway
                .range_search("observations", "effective",
                              Value(std::int64_t{1359900000}),
                              Value(std::int64_t{1360000000}))
                .size(),
            1u);

  // Cloud-side average (Paillier).
  EXPECT_NEAR(
      gateway.aggregate("observations", "value", schema::Aggregate::kAverage).value, 6.3,
      0.01);

  // The rendered selection table matches the paper's.
  const std::string table = gateway.plan("observations").to_table();
  EXPECT_NE(table.find("BIEX-2Lev"), std::string::npos);
  EXPECT_NE(table.find("DET, OPE"), std::string::npos);
}

TEST(ScenarioTest, ChannelLatencyHitsAllScenariosEqually) {
  net::ChannelConfig slow;
  slow.one_way_latency_us = 200;
  ScenarioHarness h(slow);
  ScenarioA sa(h);
  fhir::ObservationGenerator gen(9);
  datablinder::Stopwatch sw;
  sa.insert_document(gen.next());
  // put = 1 round trip = >= 2 x 200us.
  EXPECT_GE(sw.elapsed_us(), 380.0);
}

TEST(ScenarioTest, MinMaxAggregatesThroughGateway) {
  ScenarioHarness h;
  core::Gateway gateway(h.rpc, h.kms, h.local_store, shared_registry(),
                        core::GatewayConfig{{{"paillier_modulus_bits", "256"}}});

  schema::Schema s("vitals");
  schema::FieldAnnotation f;
  f.type = schema::FieldType::kInt;
  f.sensitive = true;
  f.protection = schema::ProtectionClass::kClass5;
  f.operations = {schema::Operation::kInsert, schema::Operation::kRange};
  f.aggregates = {schema::Aggregate::kMin, schema::Aggregate::kMax};
  s.field("bpm", f);
  gateway.register_schema(s);

  for (std::int64_t bpm : {72, 55, 140, 98}) {
    Document d;
    d.set("bpm", Value(bpm));
    gateway.insert("vitals", d);
  }
  EXPECT_DOUBLE_EQ(gateway.aggregate("vitals", "bpm", schema::Aggregate::kMin).value, 55);
  EXPECT_DOUBLE_EQ(gateway.aggregate("vitals", "bpm", schema::Aggregate::kMax).value, 140);
}

}  // namespace
}  // namespace datablinder::workload
