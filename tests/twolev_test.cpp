// 2Lev static encrypted multimap tests: build/query round trips across
// both storage levels, padding uniformity, shuffle coverage, tampering.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "crypto/gcm.hpp"
#include "sse/twolev.hpp"

namespace datablinder::sse {
namespace {

std::vector<DocId> query(const TwoLevClient& client, const TwoLevServerIndex& index,
                         const std::string& keyword) {
  const TwoLevToken t = client.token(keyword);
  const auto entry = TwoLevServer::lookup(index, t.label);
  std::vector<Bytes> buckets;
  if (entry) {
    const crypto::AesGcm gcm(t.entry_key);
    auto plain = gcm.open_with_nonce(*entry, t.label);
    if (plain) {
      buckets = TwoLevServer::fetch_buckets(index, TwoLevClient::bucket_indices(*plain));
    }
  }
  return client.resolve(t, entry, buckets);
}

std::vector<DocId> sorted(std::vector<DocId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(TwoLevTest, InlineAndBucketedListsRoundTrip) {
  TwoLevClient client(Bytes(32, 1), TwoLevParams{4, 8});
  std::map<std::string, std::vector<DocId>> mm;
  mm["small"] = {"a", "b"};                        // inline (<= 4)
  mm["edge"] = {"a", "b", "c", "d"};               // inline boundary
  std::vector<DocId> big;
  for (int i = 0; i < 37; ++i) big.push_back("doc" + std::to_string(i));
  mm["big"] = big;                                 // 5 buckets of 8

  const TwoLevServerIndex index = client.build(mm);
  EXPECT_EQ(index.dictionary.size(), 3u);
  EXPECT_EQ(index.bucket_array.size(), 5u);  // ceil(37/8)

  EXPECT_EQ(sorted(query(client, index, "small")), sorted(mm["small"]));
  EXPECT_EQ(sorted(query(client, index, "edge")), sorted(mm["edge"]));
  EXPECT_EQ(sorted(query(client, index, "big")), sorted(big));
  EXPECT_TRUE(query(client, index, "absent").empty());
}

TEST(TwoLevTest, BucketsAreUniformLength) {
  TwoLevClient client(Bytes(32, 2), TwoLevParams{0, 4});
  std::map<std::string, std::vector<DocId>> mm;
  mm["w1"] = {"x"};                                     // 1 bucket, short ids
  mm["w2"] = {std::string(40, 'L'), std::string(40, 'M'),
              std::string(40, 'N'), std::string(40, 'O'), std::string(40, 'P')};
  const TwoLevServerIndex index = client.build(mm);
  ASSERT_GE(index.bucket_array.size(), 3u);
  // Every bucket ciphertext has identical length — the array leaks only
  // its total size.
  const std::size_t len = index.bucket_array[0].size();
  for (const auto& b : index.bucket_array) EXPECT_EQ(b.size(), len);
}

TEST(TwoLevTest, RandomizedAgainstReference) {
  DetRng rng(9);
  std::map<std::string, std::vector<DocId>> mm;
  for (int k = 0; k < 30; ++k) {
    const std::string kw = "kw" + std::to_string(k);
    const std::size_t n = rng.uniform(25);
    for (std::size_t i = 0; i < n; ++i) {
      mm[kw].push_back("d" + std::to_string(k) + "_" + std::to_string(i));
    }
  }
  TwoLevClient client(Bytes(32, 3), TwoLevParams{3, 5});
  const TwoLevServerIndex index = client.build(mm);
  for (const auto& [kw, ids] : mm) {
    EXPECT_EQ(sorted(query(client, index, kw)), sorted(ids)) << kw;
  }
}

TEST(TwoLevTest, ShuffleActuallyDisperses) {
  // A keyword's buckets should not occupy a contiguous array prefix.
  std::map<std::string, std::vector<DocId>> mm;
  for (int k = 0; k < 8; ++k) {
    for (int i = 0; i < 16; ++i) {
      mm["kw" + std::to_string(k)].push_back("d" + std::to_string(k * 100 + i));
    }
  }
  TwoLevClient client(Bytes(32, 4), TwoLevParams{0, 4});
  const TwoLevServerIndex index = client.build(mm);

  const TwoLevToken t = client.token("kw0");
  const auto entry = TwoLevServer::lookup(index, t.label);
  ASSERT_TRUE(entry.has_value());
  const crypto::AesGcm gcm(t.entry_key);
  const auto plain = gcm.open_with_nonce(*entry, t.label);
  ASSERT_TRUE(plain.has_value());
  const auto indices = TwoLevClient::bucket_indices(*plain);
  ASSERT_EQ(indices.size(), 4u);
  bool contiguous_from_zero = true;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] != i) contiguous_from_zero = false;
  }
  EXPECT_FALSE(contiguous_from_zero);
}

TEST(TwoLevTest, TamperedStateFailsLoudly) {
  std::map<std::string, std::vector<DocId>> mm;
  for (int i = 0; i < 20; ++i) mm["w"].push_back("d" + std::to_string(i));
  TwoLevClient client(Bytes(32, 5), TwoLevParams{2, 4});
  TwoLevServerIndex index = client.build(mm);

  // Flip a byte in a bucket: resolve must throw, not return garbage ids.
  index.bucket_array[0][20] ^= 1;
  index.bucket_array[1][20] ^= 1;
  index.bucket_array[2][20] ^= 1;
  index.bucket_array[3][20] ^= 1;
  index.bucket_array[4][20] ^= 1;
  EXPECT_THROW(query(client, index, "w"), Error);
}

TEST(TwoLevTest, OutOfRangeBucketIndexRejected) {
  TwoLevServerIndex index;
  EXPECT_THROW(TwoLevServer::fetch_buckets(index, {0}), Error);
}

TEST(TwoLevTest, WrongKeyYieldsNothingUseful) {
  std::map<std::string, std::vector<DocId>> mm;
  mm["w"] = {"a"};
  TwoLevClient builder(Bytes(32, 6));
  const TwoLevServerIndex index = builder.build(mm);
  TwoLevClient intruder(Bytes(32, 7));
  // Wrong label: dictionary miss.
  const TwoLevToken t = intruder.token("w");
  EXPECT_FALSE(TwoLevServer::lookup(index, t.label).has_value());
}

TEST(TwoLevTest, StorageAccounting) {
  std::map<std::string, std::vector<DocId>> mm;
  for (int i = 0; i < 50; ++i) mm["w"].push_back("doc" + std::to_string(i));
  TwoLevClient client(Bytes(32, 8), TwoLevParams{2, 8});
  const TwoLevServerIndex index = client.build(mm);
  EXPECT_GT(index.storage_bytes(),
            index.dictionary.storage_bytes());  // buckets counted too
}

}  // namespace
}  // namespace datablinder::sse
