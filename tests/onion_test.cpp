// Onion-encryption (CryptDB baseline) tests: layer round trips, the peel
// ratchet and its permanence, and query gating by level.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "onion/onion.hpp"

namespace datablinder::onion {
namespace {

using doc::Value;

TEST(OnionTest, FullOnionRoundTrip) {
  OnionClient client(Bytes(32, 1), "orders.amount", /*numeric=*/true);
  const Bytes onion = client.encrypt(Value(std::int64_t{1234}));
  // Fresh RND layer: two encryptions of the same value differ.
  EXPECT_NE(onion, client.encrypt(Value(std::int64_t{1234})));
  // Client can always recover the core from the outermost level.
  const Bytes core = client.decrypt_core(onion, OnionLevel::kRnd);
  EXPECT_EQ(core.size(), 16u);  // OPE ciphertext core
}

TEST(OnionTest, TextOnionHasNoOpeCore) {
  OnionClient client(Bytes(32, 2), "orders.status", /*numeric=*/false);
  const Bytes onion = client.encrypt(Value("paid"));
  const Bytes core = client.decrypt_core(onion, OnionLevel::kRnd);
  EXPECT_EQ(core, Value("paid").scalar_bytes());
  EXPECT_THROW(client.range_tokens(Value("a"), Value("z")), Error);
}

TEST(OnionTest, EqualityRequiresPeeling) {
  OnionClient client(Bytes(32, 3), "c", true);
  OnionColumnServer server("c", true);
  server.put("r1", client.encrypt(Value(std::int64_t{10})));
  server.put("r2", client.encrypt(Value(std::int64_t{20})));
  server.put("r3", client.encrypt(Value(std::int64_t{10})));

  // At RND level nothing is queryable.
  EXPECT_EQ(server.level(), OnionLevel::kRnd);
  EXPECT_THROW(server.find_eq(client.eq_token(Value(std::int64_t{10}))), Error);

  // Reveal the RND key: the server peels the WHOLE column.
  server.peel_to_det(client.rnd_layer_key(), "c");
  EXPECT_EQ(server.level(), OnionLevel::kDet);
  const auto hits = server.find_eq(client.eq_token(Value(std::int64_t{10})));
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(server.find_eq(client.eq_token(Value(std::int64_t{99}))).empty());
}

TEST(OnionTest, RangeRequiresSecondPeel) {
  OnionClient client(Bytes(32, 4), "c", true);
  OnionColumnServer server("c", true);
  for (std::int64_t v : {5, 15, 25, 35}) {
    server.put("r" + std::to_string(v), client.encrypt(Value(v)));
  }
  server.peel_to_det(client.rnd_layer_key(), "c");
  const auto [lo, hi] = client.range_tokens(Value(std::int64_t{10}),
                                            Value(std::int64_t{30}));
  EXPECT_THROW(server.find_range(lo, hi), Error);  // still at DET

  server.peel_to_ope(client.det_layer_key(), "c");
  EXPECT_EQ(server.level(), OnionLevel::kOpe);
  EXPECT_EQ(server.find_range(lo, hi).size(), 2u);  // 15, 25
}

TEST(OnionTest, PeelRatchetIsMonotonic) {
  OnionClient client(Bytes(32, 5), "c", true);
  OnionColumnServer server("c", true);
  server.put("r", client.encrypt(Value(std::int64_t{1})));
  // Cannot skip or repeat layers.
  EXPECT_THROW(server.peel_to_ope(client.det_layer_key(), "c"), Error);
  server.peel_to_det(client.rnd_layer_key(), "c");
  EXPECT_THROW(server.peel_to_det(client.rnd_layer_key(), "c"), Error);
  server.peel_to_ope(client.det_layer_key(), "c");
  EXPECT_THROW(server.peel_to_ope(client.det_layer_key(), "c"), Error);
}

TEST(OnionTest, RowsInsertedAfterPeelFollowColumnLevel) {
  // CryptDB semantics quirk this model makes explicit: once a column is at
  // DET, new rows must be inserted at DET (the proxy strips the RND layer
  // on write). Here the client simply stores eq_token outputs.
  OnionClient client(Bytes(32, 6), "c", true);
  OnionColumnServer server("c", true);
  server.put("old", client.encrypt(Value(std::int64_t{7})));
  server.peel_to_det(client.rnd_layer_key(), "c");
  server.put("new", client.eq_token(Value(std::int64_t{7})));  // DET-level row
  EXPECT_EQ(server.find_eq(client.eq_token(Value(std::int64_t{7}))).size(), 2u);
}

TEST(OnionTest, TextColumnCannotReachOpe) {
  OnionClient client(Bytes(32, 7), "t", false);
  OnionColumnServer server("t", false);
  server.put("r", client.encrypt(Value("x")));
  server.peel_to_det(client.rnd_layer_key(), "t");
  EXPECT_THROW(server.peel_to_ope(client.det_layer_key(), "t"), Error);
}

TEST(OnionTest, WrongKeyFailsLoudly) {
  OnionClient client(Bytes(32, 8), "c", true);
  OnionColumnServer server("c", true);
  server.put("r", client.encrypt(Value(std::int64_t{1})));
  OnionClient wrong(Bytes(32, 9), "c", true);
  EXPECT_THROW(server.peel_to_det(wrong.rnd_layer_key(), "c"), Error);
}

}  // namespace
}  // namespace datablinder::onion
