// Property-preserving encryption tests: DET determinism, RND semantics,
// OPE order preservation and inversion, ORE comparison correctness.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "ppe/det.hpp"
#include "ppe/ope.hpp"
#include "ppe/ore.hpp"
#include "ppe/rnd.hpp"

namespace datablinder::ppe {
namespace {

TEST(DetTest, DeterministicWithinContext) {
  DetCipher c(Bytes(32, 1), "obs.status");
  EXPECT_EQ(c.encrypt(to_bytes("final")), c.encrypt(to_bytes("final")));
  EXPECT_NE(c.encrypt(to_bytes("final")), c.encrypt(to_bytes("amended")));
}

TEST(DetTest, ContextSeparatesEqualValues) {
  DetCipher status(Bytes(32, 1), "obs.status");
  DetCipher code(Bytes(32, 1), "obs.code");
  // Same key, same plaintext, different field: ciphertexts must differ so
  // cross-field frequency correlation is impossible.
  EXPECT_NE(status.encrypt(to_bytes("x")), code.encrypt(to_bytes("x")));
  EXPECT_FALSE(code.decrypt(status.encrypt(to_bytes("x"))).has_value());
}

TEST(DetTest, RoundTripAndTamper) {
  DetCipher c(Bytes(32, 2), "f");
  Bytes ct = c.encrypt(to_bytes("payload"));
  auto back = c.decrypt(ct);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(to_string(*back), "payload");
  ct[5] ^= 1;
  EXPECT_FALSE(c.decrypt(ct).has_value());
}

TEST(RndTest, ProbabilisticAndAuthenticated) {
  RndCipher c(Bytes(32, 3), "obs.performer");
  const Bytes c1 = c.encrypt(to_bytes("Dr. Smith"));
  const Bytes c2 = c.encrypt(to_bytes("Dr. Smith"));
  EXPECT_NE(c1, c2);
  EXPECT_EQ(to_string(*c.decrypt(c1)), "Dr. Smith");
  EXPECT_EQ(to_string(*c.decrypt(c2)), "Dr. Smith");

  RndCipher other(Bytes(32, 3), "other.context");
  EXPECT_FALSE(other.decrypt(c1).has_value());
}

TEST(OpeTest, PreservesOrderOnKnownValues) {
  OpeCipher c(Bytes(32, 4), "obs.effective");
  const std::uint64_t values[] = {0, 1, 2, 100, 1000, 1359966610, UINT64_MAX - 1,
                                  UINT64_MAX};
  for (std::size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(c.encrypt(values[i]), c.encrypt(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(OpeTest, DeterministicAndKeyDependent) {
  OpeCipher a(Bytes(32, 5), "f");
  OpeCipher b(Bytes(32, 6), "f");
  EXPECT_EQ(a.encrypt(12345), a.encrypt(12345));
  EXPECT_NE(a.encrypt(12345), b.encrypt(12345));
}

TEST(OpeTest, RandomizedOrderProperty) {
  OpeCipher c(Bytes(32, 7), "f");
  DetRng rng(99);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t x = rng.engine()();
    const std::uint64_t y = rng.engine()();
    const auto cx = c.encrypt(x);
    const auto cy = c.encrypt(y);
    if (x < y) EXPECT_LT(cx, cy);
    else if (x > y) EXPECT_GT(cx, cy);
    else EXPECT_EQ(cx, cy);
  }
}

TEST(OpeTest, AdjacentValuesDistinct) {
  OpeCipher c(Bytes(32, 8), "f");
  DetRng rng(5);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t x = rng.engine()() - 1;
    EXPECT_LT(c.encrypt(x), c.encrypt(x + 1));
  }
}

TEST(OpeTest, DecryptInvertsEncrypt) {
  OpeCipher c(Bytes(32, 9), "f");
  for (std::uint64_t x : {std::uint64_t{0}, std::uint64_t{7}, std::uint64_t{123456789}, UINT64_MAX}) {
    EXPECT_EQ(c.decrypt(c.encrypt(x)), x);
  }
  // Not-a-ciphertext is rejected.
  Ope128 bogus = c.encrypt(500);
  bogus.lo ^= 1;
  EXPECT_THROW(c.decrypt(bogus), Error);
}

TEST(OpeTest, CiphertextBytesSortLikeNumbers) {
  OpeCipher c(Bytes(32, 10), "f");
  const Bytes a = c.encrypt(10).to_bytes();
  const Bytes b = c.encrypt(20).to_bytes();
  EXPECT_LT(a, b);  // lexicographic byte order == numeric order
  EXPECT_EQ(Ope128::from_bytes(a), c.encrypt(10));
}

TEST(OreTest, CompareMatchesPlaintextOrder) {
  OreCipher c(Bytes(32, 11), "obs.issued", 64);
  DetRng rng(13);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = rng.engine()();
    const std::uint64_t y = rng.engine()();
    const auto result = OreCipher::compare(c.encrypt_left(x), c.encrypt_right(y));
    if (x < y) EXPECT_EQ(result, OreResult::kLess);
    else if (x > y) EXPECT_EQ(result, OreResult::kGreater);
    else EXPECT_EQ(result, OreResult::kEqual);
  }
}

TEST(OreTest, EqualityDetected) {
  OreCipher c(Bytes(32, 12), "f", 64);
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{42}, UINT64_MAX}) {
    EXPECT_EQ(OreCipher::compare(c.encrypt_left(v), c.encrypt_right(v)),
              OreResult::kEqual);
  }
}

TEST(OreTest, RightCiphertextsAreProbabilistic) {
  OreCipher c(Bytes(32, 13), "f", 64);
  const Bytes r1 = c.encrypt_right(777).serialize();
  const Bytes r2 = c.encrypt_right(777).serialize();
  EXPECT_NE(r1, r2);  // fresh nonce: stored ciphertexts are unlinkable
  // But both compare identically against a left token.
  EXPECT_EQ(OreCipher::compare(c.encrypt_left(777), OreRight::deserialize(r1)),
            OreResult::kEqual);
  EXPECT_EQ(OreCipher::compare(c.encrypt_left(777), OreRight::deserialize(r2)),
            OreResult::kEqual);
}

TEST(OreTest, SerializationRoundTrip) {
  OreCipher c(Bytes(32, 14), "f", 32);
  const OreLeft left = c.encrypt_left(123456);
  const OreRight right = c.encrypt_right(654321);
  const OreLeft left2 = OreLeft::deserialize(left.serialize());
  const OreRight right2 = OreRight::deserialize(right.serialize());
  EXPECT_EQ(OreCipher::compare(left2, right2), OreResult::kLess);
  EXPECT_THROW(OreLeft::deserialize(Bytes{1, 2, 3}), Error);
  EXPECT_THROW(OreRight::deserialize(Bytes{1, 2, 3}), Error);
}

TEST(OreTest, NarrowDomains) {
  for (std::size_t bits : {4u, 8u, 16u, 32u}) {
    OreCipher c(Bytes(32, 15), "f", bits);
    const std::uint64_t max = (bits == 64) ? UINT64_MAX : (1ULL << bits) - 1;
    EXPECT_EQ(OreCipher::compare(c.encrypt_left(0), c.encrypt_right(max)),
              OreResult::kLess);
    EXPECT_EQ(OreCipher::compare(c.encrypt_left(max), c.encrypt_right(0)),
              OreResult::kGreater);
  }
  EXPECT_THROW(OreCipher(Bytes(32, 1), "f", 63), Error);  // not multiple of 4
  EXPECT_THROW(OreCipher(Bytes(32, 1), "f", 0), Error);
}

// Parameterized sweep: OPE order preservation across deterministic seeds.
class OpeSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpeSeedSweep, SortedPlaintextsYieldSortedCiphertexts) {
  OpeCipher c(DetRng(GetParam()).bytes(32), "sweep");
  DetRng rng(GetParam() * 31 + 1);
  std::vector<std::uint64_t> xs(64);
  for (auto& x : xs) x = rng.engine()();
  std::sort(xs.begin(), xs.end());
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    if (xs[i] == xs[i + 1]) continue;
    EXPECT_LT(c.encrypt(xs[i]), c.encrypt(xs[i + 1]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpeSeedSweep, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace datablinder::ppe
