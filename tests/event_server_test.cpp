// EventServer tests: framed request/response round trips, typed error
// propagation, pipelined in-order replies with worker-pool hand-off, a
// real CloudNode behind the socket, and the ISSUE acceptance criterion —
// >= 1000 concurrent client connections multiplexed by one poll loop.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "core/cloud_node.hpp"
#include "core/exec/executor.hpp"
#include "core/metrics.hpp"
#include "core/wire.hpp"
#include "net/event_server.hpp"
#include "net/message.hpp"

namespace datablinder::net {
namespace {

using doc::Value;

Request make_request(const std::string& method, Bytes payload) {
  Request r;
  r.method = method;
  r.payload = std::move(payload);
  return r;
}

TEST(EventServerTest, EchoRoundTrip) {
  EventServer server([](const Request& r) { return Response::success(r.payload); });
  FramedClient client(server.port());
  const Bytes payload = {1, 2, 3, 4};
  EXPECT_EQ(client.call("echo", payload), payload);
  EXPECT_GE(server.stats().frames_in.load(), 1u);
  EXPECT_GE(server.stats().frames_out.load(), 1u);
}

TEST(EventServerTest, TypedErrorsPropagateThroughTheSocket) {
  EventServer server([](const Request&) -> Response {
    throw Error(ErrorCode::kNotFound, "no such thing");
  });
  FramedClient client(server.port());
  try {
    client.call("lookup", {});
    FAIL() << "expected kNotFound";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNotFound);
  }
}

TEST(EventServerTest, PipelinedRequestsAnswerInOrderViaExecutorPool) {
  // Responses may COMPLETE out of order on the worker pool; the per
  // connection state machine must still flush them in request order.
  core::PerfRegistry perf;
  core::exec::Executor exec(perf, 2);
  EventServer server(
      [](const Request& r) {
        // Tiny jitter so later frames routinely finish first.
        if (r.payload[0] % 3 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return Response::success(r.payload);
      },
      [&exec](std::function<void()> job) { exec.submit(std::move(job)); });

  FramedClient client(server.port());
  const int kFrames = 32;
  for (int i = 0; i < kFrames; ++i) {
    client.send(make_request("echo", Bytes{static_cast<std::uint8_t>(i)}));
  }
  for (int i = 0; i < kFrames; ++i) {
    const Response r = client.recv();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.payload, Bytes{static_cast<std::uint8_t>(i)});
  }
}

TEST(EventServerTest, ServesARealCloudNode) {
  core::CloudNode node;
  EventServer server([&node](const Request& r) { return node.rpc().dispatch(r); });

  FramedClient client(server.port());
  client.call("doc.put", core::wire::pack({{"col", Value("c")},
                                           {"id", Value("x")},
                                           {"blob", Value(Bytes{42})}}));
  const Bytes reply =
      client.call("doc.get", core::wire::pack({{"col", Value("c")}, {"id", Value("x")}}));
  EXPECT_EQ(core::wire::get_bin(core::wire::unpack(reply), "blob"), Bytes{42});
}

TEST(EventServerTest, OversizedFrameClosesOnlyThatConnection) {
  EventServerConfig cfg;
  cfg.max_frame_bytes = 64;
  EventServer server([](const Request& r) { return Response::success(r.payload); },
                     nullptr, cfg);

  FramedClient bad(server.port());
  FramedClient good(server.port());
  EXPECT_THROW(
      {
        bad.send(make_request("echo", Bytes(1024, 1)));
        bad.recv();
      },
      Error);
  // The protocol violation is counted and the other connection is fine.
  EXPECT_EQ(good.call("echo", Bytes{5}), Bytes{5});
  EXPECT_GE(server.stats().protocol_errors.load(), 1u);
}

TEST(EventServerTest, MultiplexesAThousandConcurrentConnections) {
  // Acceptance criterion: one poll loop holds >= 1000 live connections at
  // once and serves them all. Clients connect, all stay open while each
  // performs a round trip, and peak_connections records the high-water
  // mark.
  EventServer server([](const Request& r) { return Response::success(r.payload); });

  const std::size_t kClients = 1024;
  std::vector<std::unique_ptr<FramedClient>> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<FramedClient>(server.port()));
  }

  // A few driver threads issue one round trip per open connection.
  std::atomic<std::size_t> ok{0};
  const std::size_t kDrivers = 8;
  std::vector<std::thread> drivers;
  for (std::size_t t = 0; t < kDrivers; ++t) {
    drivers.emplace_back([&, t] {
      for (std::size_t i = t; i < kClients; i += kDrivers) {
        const Bytes payload = {static_cast<std::uint8_t>(i & 0xFF)};
        if (clients[i]->call("echo", payload) == payload) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& d : drivers) d.join();

  EXPECT_EQ(ok.load(), kClients);
  EXPECT_GE(server.stats().peak_connections.load(), kClients);
  clients.clear();
}

}  // namespace
}  // namespace datablinder::net
